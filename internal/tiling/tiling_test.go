package tiling

import (
	"testing"
	"testing/quick"
)

func mustGeometry(t *testing.T, w, h, elem int, cpuLine, gpuLine int64) Geometry {
	t.Helper()
	g, err := NewGeometry(w, h, elem, cpuLine, gpuLine)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGeometryErrors(t *testing.T) {
	cases := []struct {
		name             string
		w, h, elem       int
		cpuLine, gpuLine int64
	}{
		{"zero width", 0, 4, 4, 64, 64},
		{"zero height", 4, 0, 4, 64, 64},
		{"zero elem", 4, 4, 0, 64, 64},
		{"zero lines", 4, 4, 4, 0, 0},
	}
	for _, c := range cases {
		if _, err := NewGeometry(c.w, c.h, c.elem, c.cpuLine, c.gpuLine); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestGeometryUsesSmallerLine(t *testing.T) {
	g := mustGeometry(t, 256, 16, 4, 128, 64)
	if g.TileW != 16 { // 64B line / 4B elements
		t.Errorf("tile width = %d, want 16 (from the smaller 64B line)", g.TileW)
	}
	if g.TileBytes() != 64 {
		t.Errorf("B_size = %d, want 64", g.TileBytes())
	}
}

func TestGeometryCounts(t *testing.T) {
	g := mustGeometry(t, 256, 16, 4, 64, 64)
	if g.TilesX() != 16 || g.TilesY() != 16 {
		t.Errorf("grid = %dx%d, want 16x16", g.TilesX(), g.TilesY())
	}
	if g.TileCount() != 256 {
		t.Errorf("count = %d, want 256", g.TileCount())
	}
	if g.Bytes() != 256*16*4 {
		t.Errorf("bytes = %d", g.Bytes())
	}
	if !g.Fits(256*16*4) || g.Fits(256*16*4-1) {
		t.Error("Fits boundary wrong")
	}
}

func TestEdgeTilesClipped(t *testing.T) {
	g := mustGeometry(t, 100, 3, 4, 64, 64) // tileW 16 -> 7 tiles/row, last 4 wide
	last := g.TileAt(g.TilesX() - 1)
	if last.W != 100-6*16 {
		t.Errorf("edge tile width = %d, want 4", last.W)
	}
	var area int
	for i := 0; i < g.TileCount(); i++ {
		tl := g.TileAt(i)
		area += tl.W * tl.H
	}
	if area != 100*3 {
		t.Errorf("tile areas sum to %d, want %d (full coverage)", area, 300)
	}
}

func TestCheckerboardParity(t *testing.T) {
	g := mustGeometry(t, 128, 8, 4, 64, 64)
	for i := 0; i < g.TileCount(); i++ {
		tl := g.TileAt(i)
		p := tl.Parity(g)
		// Horizontal neighbour must differ.
		if (i+1)%g.TilesX() != 0 {
			if g.TileAt(i+1).Parity(g) == p {
				t.Fatalf("tiles %d and %d share parity", i, i+1)
			}
		}
		// Vertical neighbour must differ.
		if i+g.TilesX() < g.TileCount() {
			if g.TileAt(i+g.TilesX()).Parity(g) == p {
				t.Fatalf("tiles %d and %d (below) share parity", i, i+g.TilesX())
			}
		}
	}
	even := len(g.Tiles(Even))
	odd := len(g.Tiles(Odd))
	if even+odd != g.TileCount() {
		t.Error("parities do not partition the tile set")
	}
}

func TestParityHelpers(t *testing.T) {
	if Even.Flip() != Odd || Odd.Flip() != Even {
		t.Error("Flip wrong")
	}
	if Even.String() != "even" || Odd.String() != "odd" {
		t.Error("String wrong")
	}
}

func TestPatternValidate(t *testing.T) {
	g := mustGeometry(t, 64, 4, 4, 64, 64)
	if err := (Pattern{Geo: g, Phases: 0}).Validate(); err == nil {
		t.Error("zero phases accepted")
	}
	if err := (Pattern{Geo: g, Phases: 2}).Run(nil, nil); err == nil {
		t.Error("nil workers accepted")
	}
}

// TestRunDisjointOwnership verifies the pattern's core guarantee: within a
// phase, no tile is visited by both sides, and across a phase pair every
// tile is visited exactly once by each side. Runs under -race with both
// goroutines writing a shared slice to prove freedom from data races.
func TestRunDisjointOwnership(t *testing.T) {
	g := mustGeometry(t, 128, 16, 4, 64, 64)
	p := Pattern{Geo: g, Phases: 4}
	type visit struct{ cpu, gpu int }
	visits := make([][]visit, p.Phases)
	for i := range visits {
		visits[i] = make([]visit, g.TileCount())
	}
	shared := make([]float32, g.Width*g.Height) // both sides write their tiles

	err := p.Run(
		func(phase int, tl Tile) {
			visits[phase][tl.Index].cpu++ // safe: disjoint tiles per phase per side
			for y := tl.Y0; y < tl.Y0+tl.H; y++ {
				for x := tl.X0; x < tl.X0+tl.W; x++ {
					shared[y*g.Width+x] += 1
				}
			}
		},
		func(phase int, tl Tile) {
			visits[phase][tl.Index].gpu++
			for y := tl.Y0; y < tl.Y0+tl.H; y++ {
				for x := tl.X0; x < tl.X0+tl.W; x++ {
					shared[y*g.Width+x] *= 2
				}
			}
		})
	if err != nil {
		t.Fatal(err)
	}

	for phase := range visits {
		for idx, v := range visits[phase] {
			if v.cpu+v.gpu != 1 {
				t.Fatalf("phase %d tile %d visited %d times by cpu and %d by gpu", phase, idx, v.cpu, v.gpu)
			}
		}
	}
	// Across consecutive phase pairs, sides swap: tile visited by cpu in
	// phase 0 must be visited by gpu in phase 1.
	for idx := range visits[0] {
		if visits[0][idx].cpu == 1 && visits[1][idx].gpu != 1 {
			t.Fatalf("tile %d not handed over between phases", idx)
		}
	}
}

// Property: for any geometry, every element belongs to exactly one tile.
func TestPropertyFullCoverage(t *testing.T) {
	f := func(w8, h8, elemSel uint8) bool {
		w := int(w8%200) + 1
		h := int(h8%20) + 1
		elem := []int{1, 2, 4, 8}[elemSel%4]
		g, err := NewGeometry(w, h, elem, 64, 64)
		if err != nil {
			return false
		}
		seen := make([]int, w*h)
		for i := 0; i < g.TileCount(); i++ {
			tl := g.TileAt(i)
			for y := tl.Y0; y < tl.Y0+tl.H; y++ {
				for x := tl.X0; x < tl.X0+tl.W; x++ {
					seen[y*w+x]++
				}
			}
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: parity sets are balanced to within one tile per row pair.
func TestPropertyParityBalance(t *testing.T) {
	f := func(w8, h8 uint8) bool {
		w := int(w8%200) + 16
		h := int(h8%20) + 1
		g, err := NewGeometry(w, h, 4, 64, 64)
		if err != nil {
			return false
		}
		even := len(g.Tiles(Even))
		odd := len(g.Tiles(Odd))
		diff := even - odd
		if diff < 0 {
			diff = -diff
		}
		// A checkerboard over an n-tile grid is balanced within ceil(rows/2).
		return diff <= (g.TilesY()+1)/2+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEstimateOverlapGain(t *testing.T) {
	g := mustGeometry(t, 256, 16, 4, 64, 64) // 256 tiles
	p := Pattern{Geo: g, Phases: 2}
	over, serial, err := p.Estimate(Timing{CPUTile: 100, GPUTile: 100, Barrier: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Balanced sides: phase = 128*100 + 50; serial = 256*100 + 50.
	if over != 2*(12800+50) {
		t.Errorf("overlapped = %v, want %v", over, 2*(12800+50))
	}
	if serial != 2*(25600+50) {
		t.Errorf("serialized = %v, want %v", serial, 2*(25600+50))
	}
	if float64(serial)/float64(over) < 1.9 {
		t.Errorf("balanced overlap gain = %.2f, want ~2x", float64(serial)/float64(over))
	}
}

func TestEstimateImbalancedSides(t *testing.T) {
	g := mustGeometry(t, 256, 16, 4, 64, 64)
	p := Pattern{Geo: g, Phases: 1}
	over, serial, err := p.Estimate(Timing{CPUTile: 10, GPUTile: 1000, Barrier: 0})
	if err != nil {
		t.Fatal(err)
	}
	// The slow side dominates: gain approaches 1 + cpu share.
	gain := float64(serial) / float64(over)
	if gain < 1.0 || gain > 1.05 {
		t.Errorf("imbalanced gain = %.3f, want barely above 1", gain)
	}
}

func TestEstimateErrors(t *testing.T) {
	g := mustGeometry(t, 64, 4, 4, 64, 64)
	if _, _, err := (Pattern{Geo: g, Phases: 2}).Estimate(Timing{CPUTile: -1}); err == nil {
		t.Error("negative timing accepted")
	}
	if _, _, err := (Pattern{Geo: g}).Estimate(Timing{}); err == nil {
		t.Error("invalid pattern accepted")
	}
}
