package tiling

import (
	"testing"

	"igpucomm/internal/cpu"
	"igpucomm/internal/devices"
	"igpucomm/internal/gpu"
	"igpucomm/internal/isa"
	"igpucomm/internal/soc"
	"igpucomm/internal/units"
)

func simSetup(t *testing.T) (*soc.SoC, Pattern, int64) {
	t.Helper()
	s, err := devices.NewSoC(devices.XavierName)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := s.AllocPinned("tiles", 512*1024)
	if err != nil {
		t.Fatal(err)
	}
	geo, err := NewGeometry(1024, 64, 4, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	return s, Pattern{Geo: geo, Phases: 4}, buf.Addr
}

func simWork(base int64, width int, barrier int64) SoCWork {
	return SoCWork{
		Barrier: 500,
		CPUTile: func(c *cpu.CPU, tl Tile) {
			addr := base + int64(tl.Y0*width+tl.X0)*4
			c.Load(addr, 4)
			c.Work(isa.FMA, 8)
			c.Store(addr, 4)
		},
		GPUKernel: func(phase int, tiles []Tile) gpu.Kernel {
			return gpu.Kernel{
				Name:    "tile-consume",
				Threads: len(tiles) * 16,
				Program: func(tid int, p *isa.Program) {
					tl := tiles[tid/16]
					lane := int64(tid % 16)
					addr := base + int64(tl.Y0*width+tl.X0)*4 + lane*4
					p.Ld(addr, 4)
					p.Compute(isa.FMA, 4)
				},
			}
		},
	}
}

func TestSimulateOnSoC(t *testing.T) {
	s, p, base := simSetup(t)
	total, traces, err := p.SimulateOnSoC(s, simWork(base, p.Geo.Width, 500))
	if err != nil {
		t.Fatal(err)
	}
	if total <= 0 {
		t.Fatal("no simulated time")
	}
	if len(traces) != p.Phases {
		t.Fatalf("traces = %d, want %d", len(traces), p.Phases)
	}
	half := p.Geo.TileCount() / 2
	for _, tr := range traces {
		if tr.CPUTiles+tr.GPUTiles != p.Geo.TileCount() {
			t.Errorf("phase %d covers %d tiles", tr.Phase, tr.CPUTiles+tr.GPUTiles)
		}
		if tr.CPUTiles < half-64 || tr.CPUTiles > half+64 {
			t.Errorf("phase %d unbalanced: %d cpu tiles", tr.Phase, tr.CPUTiles)
		}
		// The overlapped makespan is bounded by its components.
		floor := tr.CPUTime
		if tr.GPUTime > floor {
			floor = tr.GPUTime
		}
		if tr.Overlap < floor {
			t.Errorf("phase %d overlap %v below slower side %v", tr.Phase, tr.Overlap, floor)
		}
		if tr.Overlap > tr.CPUTime+tr.GPUTime {
			t.Errorf("phase %d overlap %v above serial sum", tr.Phase, tr.Overlap)
		}
	}
	// Phase-accurate total beats serializing the sides phase by phase.
	var serial units.Latency
	for _, tr := range traces {
		serial += tr.CPUTime + tr.GPUTime + 500
	}
	if total >= serial {
		t.Errorf("overlapped total %v not below serialized %v", total, serial)
	}
}

func TestSimulateOnSoCErrors(t *testing.T) {
	s, p, base := simSetup(t)
	if _, _, err := p.SimulateOnSoC(s, SoCWork{}); err == nil {
		t.Error("nil work accepted")
	}
	w := simWork(base, p.Geo.Width, 0)
	w.Barrier = -1
	if _, _, err := p.SimulateOnSoC(s, w); err == nil {
		t.Error("negative barrier accepted")
	}
	bad := Pattern{Geo: p.Geo, Phases: 0}
	if _, _, err := bad.SimulateOnSoC(s, simWork(base, p.Geo.Width, 0)); err == nil {
		t.Error("invalid pattern accepted")
	}
}
