// Package tiling implements the paper's zero-copy communication pattern
// (§III-C, Fig 4): an n-dimensional data structure sized from the available
// GPU LLC is partitioned into tiles whose size matches the smaller of the
// CPU and GPU cache line sizes, and CPU and iGPU alternate over even/odd
// tiles in pipelined producer-consumer phases. No per-access synchronization
// is needed: within a phase the two sides own disjoint tile sets, and the
// phase barrier is the only ordering point.
//
// The package provides both a *real* concurrent implementation (goroutines
// standing in for the CPU thread and the GPU stream; race-free by
// construction and verified under -race) and a timing twin that prices the
// pattern on a simulated SoC.
package tiling

import (
	"fmt"
	"sync"

	"igpucomm/internal/units"
)

// Parity selects the even or odd tile set of a phase.
type Parity int

// Tile parities.
const (
	Even Parity = 0
	Odd  Parity = 1
)

func (p Parity) String() string {
	if p == Even {
		return "even"
	}
	return "odd"
}

// Flip returns the other parity.
func (p Parity) Flip() Parity { return 1 - p }

// Geometry is the tile decomposition of a 2D data structure.
type Geometry struct {
	// Width and Height are the data dimensions in elements.
	Width, Height int
	// ElemSize is bytes per element.
	ElemSize int
	// TileW and TileH are the tile dimensions in elements.
	TileW, TileH int
}

// NewGeometry sizes the decomposition the way §III-C prescribes: the overall
// structure (Width_x × Width_y) should fit the available GPU LLC (the caller
// picks Width/Height accordingly — Fits reports whether it does), and the
// tile byte size (B_size) is derived from the smaller of the CPU and GPU
// LLC line sizes so each tile access coalesces into whole-line transactions.
// Tiles are lineBytes wide and one element tall, the finest decomposition
// that keeps every transaction line-aligned.
func NewGeometry(width, height, elemSize int, cpuLine, gpuLine int64) (Geometry, error) {
	if width <= 0 || height <= 0 {
		return Geometry{}, fmt.Errorf("tiling: dimensions %dx%d must be positive", width, height)
	}
	if elemSize <= 0 {
		return Geometry{}, fmt.Errorf("tiling: element size %d must be positive", elemSize)
	}
	line := cpuLine
	if gpuLine < line {
		line = gpuLine
	}
	if line <= 0 {
		return Geometry{}, fmt.Errorf("tiling: line sizes must be positive")
	}
	tileW := int(line) / elemSize
	if tileW < 1 {
		tileW = 1
	}
	if tileW > width {
		tileW = width
	}
	g := Geometry{Width: width, Height: height, ElemSize: elemSize, TileW: tileW, TileH: 1}
	return g, nil
}

// TilesX and TilesY are the tile-grid dimensions (ceiling division: edge
// tiles may be narrower).
func (g Geometry) TilesX() int { return (g.Width + g.TileW - 1) / g.TileW }

// TilesY is the vertical tile count.
func (g Geometry) TilesY() int { return (g.Height + g.TileH - 1) / g.TileH }

// TileCount is the total number of tiles.
func (g Geometry) TileCount() int { return g.TilesX() * g.TilesY() }

// Bytes is the total data size.
func (g Geometry) Bytes() int64 {
	return int64(g.Width) * int64(g.Height) * int64(g.ElemSize)
}

// TileBytes is B_size, the byte size of one full tile.
func (g Geometry) TileBytes() int64 {
	return int64(g.TileW) * int64(g.TileH) * int64(g.ElemSize)
}

// Fits reports whether the whole structure fits a cache of llcBytes — the
// §III-C sizing rule for Width_x × Width_y.
func (g Geometry) Fits(llcBytes int64) bool { return g.Bytes() <= llcBytes }

// Tile is one block of the decomposition.
type Tile struct {
	Index  int // linear tile index (row-major over the tile grid)
	X0, Y0 int // element coordinates of the top-left corner
	W, H   int // extent in elements (edge tiles may be clipped)
}

// Parity is the checkerboard colour of the tile: (tx + ty) % 2, so that
// horizontally and vertically adjacent tiles always belong to opposite
// sides within a phase.
func (t Tile) Parity(g Geometry) Parity {
	tx := t.Index % g.TilesX()
	ty := t.Index / g.TilesX()
	return Parity((tx + ty) % 2)
}

// TileAt returns tile number idx.
func (g Geometry) TileAt(idx int) Tile {
	tx := idx % g.TilesX()
	ty := idx / g.TilesX()
	x0 := tx * g.TileW
	y0 := ty * g.TileH
	w := g.TileW
	if x0+w > g.Width {
		w = g.Width - x0
	}
	h := g.TileH
	if y0+h > g.Height {
		h = g.Height - y0
	}
	return Tile{Index: idx, X0: x0, Y0: y0, W: w, H: h}
}

// Tiles returns all tiles of one parity, in index order.
func (g Geometry) Tiles(p Parity) []Tile {
	var out []Tile
	for i := 0; i < g.TileCount(); i++ {
		t := g.TileAt(i)
		if t.Parity(g) == p {
			out = append(out, t)
		}
	}
	return out
}

// Pattern runs the alternating-phase schedule.
type Pattern struct {
	Geo Geometry
	// Phases is the number of producer/consumer rounds. After an even
	// number of phases every tile has been visited the same number of
	// times by each side.
	Phases int
}

// Validate reports structural problems.
func (p Pattern) Validate() error {
	if p.Phases <= 0 {
		return fmt.Errorf("tiling: phases %d must be positive", p.Phases)
	}
	if p.Geo.TileCount() == 0 {
		return fmt.Errorf("tiling: empty geometry")
	}
	return nil
}

// Run executes the pattern concurrently: in phase i the cpu function is
// applied to all tiles of parity i%2 and the gpu function to the others, by
// two goroutines running simultaneously; a barrier separates phases. The
// two sides never touch the same tile in the same phase, so data functions
// may freely read and write their tile without synchronization.
func (p Pattern) Run(cpu, gpu func(phase int, t Tile)) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if cpu == nil || gpu == nil {
		return fmt.Errorf("tiling: nil worker")
	}
	for phase := 0; phase < p.Phases; phase++ {
		cpuParity := Parity(phase % 2)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for _, t := range p.Geo.Tiles(cpuParity) {
				cpu(phase, t)
			}
		}()
		go func() {
			defer wg.Done()
			for _, t := range p.Geo.Tiles(cpuParity.Flip()) {
				gpu(phase, t)
			}
		}()
		wg.Wait() // the phase barrier — the pattern's only synchronization
	}
	return nil
}

// Timing prices the pattern on simulated hardware. Per phase each side
// processes half the tiles; the phase lasts as long as the slower side plus
// the barrier cost; phases serialize.
type Timing struct {
	// CPUTilePerNs and GPUTilePerNs are the per-tile processing times.
	CPUTile units.Latency
	GPUTile units.Latency
	// Barrier is the per-phase synchronization cost (an event record +
	// wait on real hardware).
	Barrier units.Latency
}

// Estimate returns the overlapped makespan of running the pattern and, for
// comparison, the serialized time the same work would take without the
// pattern (all CPU tiles then all GPU tiles, per phase). The ratio of the
// two is the overlap gain §III-C buys.
func (p Pattern) Estimate(t Timing) (overlapped, serialized units.Latency, err error) {
	if err := p.Validate(); err != nil {
		return 0, 0, err
	}
	if t.CPUTile < 0 || t.GPUTile < 0 || t.Barrier < 0 {
		return 0, 0, fmt.Errorf("tiling: negative timing component")
	}
	for phase := 0; phase < p.Phases; phase++ {
		cpuParity := Parity(phase % 2)
		nCPU := len(p.Geo.Tiles(cpuParity))
		nGPU := p.Geo.TileCount() - nCPU
		cpuTime := units.Latency(float64(nCPU) * float64(t.CPUTile))
		gpuTime := units.Latency(float64(nGPU) * float64(t.GPUTile))
		phaseTime := cpuTime
		if gpuTime > phaseTime {
			phaseTime = gpuTime
		}
		overlapped += phaseTime + t.Barrier
		serialized += cpuTime + gpuTime + t.Barrier
	}
	return overlapped, serialized, nil
}
