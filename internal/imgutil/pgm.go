package imgutil

import (
	"bufio"
	"fmt"
	"io"
)

// pgmMax is the sample ceiling written to PGM headers.
const pgmMax = 255

// EncodePGM writes the image as binary PGM (P5), clamping samples to
// [0, 255]. The examples use it to dump frames and edge maps for visual
// inspection.
func EncodePGM(w io.Writer, im *Image) error {
	if im == nil {
		return fmt.Errorf("imgutil: nil image")
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n%d\n", im.W, im.H, pgmMax); err != nil {
		return err
	}
	for _, v := range im.Pix {
		b := byte(0)
		switch {
		case v >= pgmMax:
			b = pgmMax
		case v > 0:
			b = byte(v)
		}
		if err := bw.WriteByte(b); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodePGM reads a binary PGM (P5) image.
func DecodePGM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	var magic string
	if _, err := fmt.Fscan(br, &magic); err != nil {
		return nil, fmt.Errorf("imgutil: pgm header: %w", err)
	}
	if magic != "P5" {
		return nil, fmt.Errorf("imgutil: not a binary PGM (magic %q)", magic)
	}
	var w, h, max int
	if _, err := fmt.Fscan(br, &w, &h, &max); err != nil {
		return nil, fmt.Errorf("imgutil: pgm dimensions: %w", err)
	}
	if w <= 0 || h <= 0 || w*h > 1<<28 {
		return nil, fmt.Errorf("imgutil: implausible pgm dimensions %dx%d", w, h)
	}
	if max <= 0 || max > 255 {
		return nil, fmt.Errorf("imgutil: unsupported pgm max %d", max)
	}
	// Exactly one whitespace byte separates the header from the samples.
	if _, err := br.ReadByte(); err != nil {
		return nil, fmt.Errorf("imgutil: pgm separator: %w", err)
	}
	im := NewImage(w, h)
	buf := make([]byte, w*h)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("imgutil: pgm samples: %w", err)
	}
	for i, b := range buf {
		im.Pix[i] = float32(b)
	}
	return im, nil
}
