package imgutil

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewImagePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad dimensions accepted")
		}
	}()
	NewImage(0, 5)
}

func TestImageAccessors(t *testing.T) {
	im := NewImage(4, 3)
	im.Set(2, 1, 7)
	if im.At(2, 1) != 7 {
		t.Error("Set/At round trip failed")
	}
	if im.At(-1, 0) != 0 || im.At(4, 0) != 0 || im.At(0, 3) != 0 {
		t.Error("out-of-bounds reads should be 0")
	}
	im.Set(-1, 0, 5) // must not panic
	if im.Index(2, 1) != 6 {
		t.Errorf("Index = %d, want 6", im.Index(2, 1))
	}
	if im.Bytes() != 48 {
		t.Errorf("Bytes = %d, want 48", im.Bytes())
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(0).Uint64() == 0 {
		t.Error("zero seed should still produce output")
	}
}

func TestRNGFloatRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		f := r.Float()
		if f < 0 || f >= 1 {
			t.Fatalf("Float out of range: %v", f)
		}
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(7)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) < 8 {
		t.Error("Intn poorly distributed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) accepted")
		}
	}()
	r.Intn(0)
}

func defaultSpotParams() SpotGridParams {
	return SpotGridParams{
		SubapsX: 8, SubapsY: 8, SubapPx: 16,
		SpotSigma: 1.5, MaxShift: 2.5,
		PeakIntensity: 200, Background: 5, NoiseAmp: 2,
		Seed: 1,
	}
}

func TestSpotGridParamsValidate(t *testing.T) {
	if err := defaultSpotParams().Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := defaultSpotParams()
	bad.SubapPx = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero subap accepted")
	}
	bad = defaultSpotParams()
	bad.MaxShift = 8
	if err := bad.Validate(); err == nil {
		t.Error("spot-escaping shift accepted")
	}
	bad = defaultSpotParams()
	bad.SpotSigma = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero sigma accepted")
	}
}

func TestSpotGridGeometryAndTruth(t *testing.T) {
	p := defaultSpotParams()
	im, truth, err := SpotGrid(p)
	if err != nil {
		t.Fatal(err)
	}
	if im.W != 128 || im.H != 128 {
		t.Errorf("image %dx%d, want 128x128", im.W, im.H)
	}
	if len(truth) != 64 {
		t.Fatalf("truth entries = %d, want 64", len(truth))
	}
	// Each truth point lies inside its subaperture.
	for i, tc := range truth {
		sx, sy := i%8, i/8
		if tc.X < float64(sx*16) || tc.X >= float64((sx+1)*16) ||
			tc.Y < float64(sy*16) || tc.Y >= float64((sy+1)*16) {
			t.Errorf("truth %d at (%.1f, %.1f) outside its subaperture", i, tc.X, tc.Y)
		}
	}
	// The brightest pixel of a subaperture should be near its truth point.
	tc := truth[0]
	var bx, by int
	var best float32
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			if v := im.At(x, y); v > best {
				best, bx, by = v, x, y
			}
		}
	}
	if math.Abs(float64(bx)+0.5-tc.X) > 1.5 || math.Abs(float64(by)+0.5-tc.Y) > 1.5 {
		t.Errorf("peak at (%d,%d) far from truth (%.1f,%.1f)", bx, by, tc.X, tc.Y)
	}
}

func TestSpotGridDeterministic(t *testing.T) {
	p := defaultSpotParams()
	im1, truth1, _ := SpotGrid(p)
	im2, truth2, _ := SpotGrid(p)
	for i := range im1.Pix {
		if im1.Pix[i] != im2.Pix[i] {
			t.Fatal("same seed produced different images")
		}
	}
	for i := range truth1 {
		if truth1[i] != truth2[i] {
			t.Fatal("same seed produced different truth")
		}
	}
	p.Seed = 2
	im3, _, _ := SpotGrid(p)
	same := true
	for i := range im1.Pix {
		if im1.Pix[i] != im3.Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical images")
	}
}

func TestTexturedSceneHasStructure(t *testing.T) {
	im := TexturedScene(128, 96, 12, 3)
	if im.W != 128 || im.H != 96 {
		t.Fatalf("dimensions wrong")
	}
	var lo, hi float32 = math.MaxFloat32, 0
	for _, v := range im.Pix {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo < 50 {
		t.Errorf("scene contrast %v too low for corner detection", hi-lo)
	}
}

func TestDownsample2x(t *testing.T) {
	src := NewImage(4, 4)
	for i := range src.Pix {
		src.Pix[i] = float32(i)
	}
	dst := Downsample2x(src)
	if dst.W != 2 || dst.H != 2 {
		t.Fatalf("downsampled to %dx%d, want 2x2", dst.W, dst.H)
	}
	// Top-left quad: pixels 0,1,4,5 -> mean 2.5.
	if dst.At(0, 0) != 2.5 {
		t.Errorf("dst(0,0) = %v, want 2.5", dst.At(0, 0))
	}
}

func TestDownsampleTiny(t *testing.T) {
	src := NewImage(1, 1)
	dst := Downsample2x(src)
	if dst.W != 1 || dst.H != 1 {
		t.Error("degenerate downsample should clamp to 1x1")
	}
}

// Property: downsampling preserves total energy to within averaging error.
func TestPropertyDownsampleMeanPreserved(t *testing.T) {
	f := func(seed uint64) bool {
		im := TexturedScene(64, 64, 6, seed)
		down := Downsample2x(im)
		var sumSrc, sumDst float64
		for _, v := range im.Pix {
			sumSrc += float64(v)
		}
		for _, v := range down.Pix {
			sumDst += float64(v)
		}
		meanSrc := sumSrc / float64(len(im.Pix))
		meanDst := sumDst / float64(len(down.Pix))
		return math.Abs(meanSrc-meanDst) < 0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPGMRoundTrip(t *testing.T) {
	im := TexturedScene(37, 23, 5, 9) // odd sizes exercise header parsing
	var buf bytes.Buffer
	if err := EncodePGM(&buf, im); err != nil {
		t.Fatal(err)
	}
	back, err := DecodePGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != im.W || back.H != im.H {
		t.Fatalf("dimensions %dx%d, want %dx%d", back.W, back.H, im.W, im.H)
	}
	for i := range im.Pix {
		want := im.Pix[i]
		if want > 255 {
			want = 255
		}
		if want < 0 {
			want = 0
		}
		if math.Abs(float64(back.Pix[i]-float32(int(want)))) > 1 {
			t.Fatalf("pixel %d: %v -> %v", i, im.Pix[i], back.Pix[i])
		}
	}
}

func TestPGMClamping(t *testing.T) {
	im := NewImage(2, 1)
	im.Pix[0] = -10
	im.Pix[1] = 999
	var buf bytes.Buffer
	if err := EncodePGM(&buf, im); err != nil {
		t.Fatal(err)
	}
	back, err := DecodePGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Pix[0] != 0 || back.Pix[1] != 255 {
		t.Errorf("clamped samples = %v", back.Pix)
	}
}

func TestPGMErrors(t *testing.T) {
	if err := EncodePGM(io.Discard, nil); err == nil {
		t.Error("nil image accepted")
	}
	cases := map[string]string{
		"bad magic":    "P2\n2 2\n255\n....",
		"no dims":      "P5\n",
		"zero dims":    "P5\n0 2\n255\n",
		"huge max":     "P5\n2 2\n65535\n",
		"short pixels": "P5\n4 4\n255\nab",
	}
	for name, data := range cases {
		if _, err := DecodePGM(strings.NewReader(data)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
