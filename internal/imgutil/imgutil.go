// Package imgutil provides the synthetic frames the case-study applications
// run on: Gaussian spot grids standing in for Shack-Hartmann wavefront-sensor
// exposures, and textured scenes standing in for the camera frames an
// ORB-SLAM front-end consumes. Everything is deterministic — a seeded
// xorshift generator replaces photographic randomness — so simulations and
// tests are exactly reproducible.
package imgutil

import (
	"fmt"
	"math"
)

// Image is a grayscale float32 raster, row-major.
type Image struct {
	W, H int
	Pix  []float32
}

// NewImage allocates a zeroed image. Panics on non-positive dimensions:
// image geometry is static test/benchmark configuration.
func NewImage(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imgutil: dimensions %dx%d must be positive", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]float32, w*h)}
}

// At returns the pixel value, 0 outside bounds (clamped border reads keep
// detector windows simple).
func (im *Image) At(x, y int) float32 {
	if x < 0 || y < 0 || x >= im.W || y >= im.H {
		return 0
	}
	return im.Pix[y*im.W+x]
}

// Set writes a pixel; out-of-bounds writes are ignored.
func (im *Image) Set(x, y int, v float32) {
	if x < 0 || y < 0 || x >= im.W || y >= im.H {
		return
	}
	im.Pix[y*im.W+x] = v
}

// Index returns the linear index of (x, y); callers must be in bounds.
func (im *Image) Index(x, y int) int { return y*im.W + x }

// Bytes is the raster size in bytes (float32 pixels).
func (im *Image) Bytes() int64 { return int64(len(im.Pix)) * 4 }

// RNG is a tiny deterministic xorshift64* generator. The simulator forbids
// global randomness (runs must replay exactly), so every synthetic input
// derives from an explicit seed.
type RNG struct{ s uint64 }

// NewRNG seeds the generator (0 is mapped to a fixed non-zero seed).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{s: seed}
}

// Uint64 advances the generator.
func (r *RNG) Uint64() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// Float returns a uniform value in [0, 1).
func (r *RNG) Float() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n). Panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("imgutil: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// SpotGridParams describes a Shack-Hartmann exposure: a grid of subapertures
// each holding one Gaussian spot displaced from its center by the local
// wavefront slope.
type SpotGridParams struct {
	SubapsX, SubapsY int     // lenslet grid
	SubapPx          int     // pixels per subaperture side
	SpotSigma        float64 // Gaussian sigma in pixels
	MaxShift         float64 // max |displacement| from subaperture center, in pixels
	PeakIntensity    float64 // spot peak value
	Background       float64 // uniform background level
	NoiseAmp         float64 // additive uniform noise amplitude
	Seed             uint64
}

// Validate checks the parameters.
func (p SpotGridParams) Validate() error {
	if p.SubapsX <= 0 || p.SubapsY <= 0 || p.SubapPx <= 0 {
		return fmt.Errorf("imgutil: spot grid geometry must be positive")
	}
	if p.SpotSigma <= 0 || p.PeakIntensity <= 0 {
		return fmt.Errorf("imgutil: spot shape must be positive")
	}
	if p.MaxShift < 0 || p.Background < 0 || p.NoiseAmp < 0 {
		return fmt.Errorf("imgutil: negative spot grid parameter")
	}
	if 2*p.MaxShift >= float64(p.SubapPx)/2 {
		return fmt.Errorf("imgutil: max shift %.1f would push spots out of %dpx subapertures", p.MaxShift, p.SubapPx)
	}
	return nil
}

// TrueCentroid is the ground-truth spot position of one subaperture,
// in absolute image coordinates.
type TrueCentroid struct{ X, Y float64 }

// SpotGrid renders the exposure and returns the ground-truth spot centers.
func SpotGrid(p SpotGridParams) (*Image, []TrueCentroid, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	im := NewImage(p.SubapsX*p.SubapPx, p.SubapsY*p.SubapPx)
	rng := NewRNG(p.Seed)
	truth := make([]TrueCentroid, 0, p.SubapsX*p.SubapsY)

	for sy := 0; sy < p.SubapsY; sy++ {
		for sx := 0; sx < p.SubapsX; sx++ {
			cx := float64(sx*p.SubapPx) + float64(p.SubapPx)/2 + (rng.Float()*2-1)*p.MaxShift
			cy := float64(sy*p.SubapPx) + float64(p.SubapPx)/2 + (rng.Float()*2-1)*p.MaxShift
			truth = append(truth, TrueCentroid{X: cx, Y: cy})
			x0, y0 := sx*p.SubapPx, sy*p.SubapPx
			for y := y0; y < y0+p.SubapPx; y++ {
				for x := x0; x < x0+p.SubapPx; x++ {
					dx := float64(x) + 0.5 - cx
					dy := float64(y) + 0.5 - cy
					v := p.PeakIntensity * math.Exp(-(dx*dx+dy*dy)/(2*p.SpotSigma*p.SpotSigma))
					v += p.Background + p.NoiseAmp*rng.Float()
					im.Set(x, y, float32(v))
				}
			}
		}
	}
	return im, truth, nil
}

// TexturedScene renders a deterministic corner-rich scene for the feature
// detector: a field of axis-aligned bright rectangles over a dark background
// with mild noise. Rectangle corners are strong FAST responses.
func TexturedScene(w, h, rects int, seed uint64) *Image {
	im := NewImage(w, h)
	rng := NewRNG(seed)
	// Low-amplitude background noise keeps flat regions below any corner
	// threshold while avoiding degenerate all-equal patches.
	for i := range im.Pix {
		im.Pix[i] = 8 + float32(rng.Float()*4)
	}
	for r := 0; r < rects; r++ {
		rw := 8 + rng.Intn(w/6+1)
		rh := 8 + rng.Intn(h/6+1)
		x0 := rng.Intn(maxInt(w-rw, 1))
		y0 := rng.Intn(maxInt(h-rh, 1))
		level := float32(100 + rng.Intn(120))
		for y := y0; y < y0+rh && y < h; y++ {
			for x := x0; x < x0+rw && x < w; x++ {
				im.Pix[y*w+x] = level
			}
		}
	}
	return im
}

// Downsample2x box-filters the image to half resolution (pyramid builder).
func Downsample2x(src *Image) *Image {
	w, h := src.W/2, src.H/2
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	dst := NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			sum := src.At(2*x, 2*y) + src.At(2*x+1, 2*y) + src.At(2*x, 2*y+1) + src.At(2*x+1, 2*y+1)
			dst.Set(x, y, sum/4)
		}
	}
	return dst
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
