package imgutil

import (
	"bytes"
	"testing"
)

// FuzzDecodePGM hardens the parser against hostile headers and truncated
// payloads: it must never panic, and anything it accepts must re-encode.
func FuzzDecodePGM(f *testing.F) {
	var seed bytes.Buffer
	if err := EncodePGM(&seed, TexturedScene(8, 6, 2, 1)); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("P5\n2 2\n255\nabcd"))
	f.Add([]byte("P5\n0 0\n255\n"))
	f.Add([]byte("P2\n2 2\n255\nnot binary"))
	f.Add([]byte("P5\n99999999 99999999\n255\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		im, err := DecodePGM(bytes.NewReader(data))
		if err != nil {
			return
		}
		if im.W <= 0 || im.H <= 0 || len(im.Pix) != im.W*im.H {
			t.Fatalf("accepted inconsistent image %dx%d with %d pixels", im.W, im.H, len(im.Pix))
		}
		var out bytes.Buffer
		if err := EncodePGM(&out, im); err != nil {
			t.Fatalf("accepted image failed to re-encode: %v", err)
		}
	})
}
