package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// writeTree writes files (path -> content) under a fresh temp root and
// returns the root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		full := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestExportedDocFlagsUndocumented(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/engine/x.go": `package engine

// Documented has a doc comment.
func Documented() {}

func Exposed() {}

type Thing struct{}

const Limit = 3

var Knob = 1
`,
	})
	got, err := LintExportedDocs(root, []string{"internal/engine"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("want 4 exporteddoc findings (Exposed, Thing, Limit, Knob), got %d: %v", len(got), got)
	}
	for _, f := range got {
		if f.Rule != "exporteddoc" {
			t.Errorf("finding rule = %q, want exporteddoc", f.Rule)
		}
	}
}

func TestExportedDocAcceptsDocumentedAndUnexported(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/engine/x.go": `package engine

// Do does.
func Do() {}

// Obj is a thing.
type Obj struct{}

// Methods need comments too.
func (Obj) Act() {}

// Sizes of things.
const (
	Small = 1
	Large = 2
)

func internalHelper() {}

type hidden struct{}
`,
	})
	got, err := LintExportedDocs(root, []string{"internal/engine"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("documented/unexported code flagged: %v", got)
	}
}

func TestExportedDocFlagsUndocumentedMethod(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/engine/x.go": `package engine

// Obj is a thing.
type Obj struct{}

func (Obj) Act() {}
`,
	})
	got, err := LintExportedDocs(root, []string{"internal/engine"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Rule != "exporteddoc" {
		t.Fatalf("want 1 method finding, got %v", got)
	}
}

func TestExportedDocSkipsTestFiles(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/engine/x_test.go": `package engine

func TestHelperExported(t int) {}
`,
		"internal/engine/x.go": `package engine
`,
	})
	got, err := LintExportedDocs(root, []string{"internal/engine"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("test file flagged: %v", got)
	}
}

// TestDocPackagesStayClean holds the real repository to the exporteddoc
// rule: the contract packages must stay fully documented. This is the test
// behind `make lint-docs`.
func TestDocPackagesStayClean(t *testing.T) {
	root := repoRoot(t)
	got, err := LintExportedDocs(root, DocPackages())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range got {
		t.Errorf("%s", f)
	}
}

// repoRoot walks up from the test's working directory to the go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			t.Fatalf("no go.mod above %s", dir)
		}
		d = parent
	}
}

func TestMarkdownLinksResolve(t *testing.T) {
	root := writeTree(t, map[string]string{
		"README.md": `# Title

## Local

[good](docs/GOOD.md) and [broken](docs/MISSING.md) and
[anchored](docs/GOOD.md#section) and [web](https://example.com/x) and
[anchor-only](#local) and ![img](docs/missing.png)
`,
		"docs/GOOD.md": "# Good\n\n## Section\n[up](../README.md)\n",
	})
	files, err := MarkdownFiles(root)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CheckMarkdownLinks(root, files)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("want 2 mdlink findings (MISSING.md, missing.png), got %d: %v", len(got), got)
	}
	for _, f := range got {
		if f.Rule != "mdlink" {
			t.Errorf("finding rule = %q, want mdlink", f.Rule)
		}
	}
}

// TestMarkdownAnchorsValidate pins the #fragment side of the mdlink rule:
// anchors must match a real heading's GitHub-style slug, in-page or across
// files, with duplicate-heading and code-fence semantics as GitHub renders
// them.
func TestMarkdownAnchorsValidate(t *testing.T) {
	root := writeTree(t, map[string]string{
		"README.md": `# My Guide

## Install & Run

## Install & Run

[ok](#install--run) [dup](#install--run-1) [bad](#nope)
[cross](docs/API.md#the-api) [crossbad](docs/API.md#absent)
[notmd](docs/data.txt#frag)
`,
		"docs/API.md":   "# The API\n\n```\n# not a heading, just a shell comment\n```\n",
		"docs/data.txt": "plain\n",
	})
	got, err := CheckMarkdownLinks(root, []string{"README.md", "docs/API.md"})
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, f := range got {
		msgs = append(msgs, f.Msg)
	}
	want := []string{
		`anchor "#nope" does not match any heading in README.md`,
		`anchor "#absent" does not match any heading in API.md`,
		`link "docs/data.txt#frag" carries a #fragment, but docs/data.txt is not a markdown file`,
	}
	if len(got) != len(want) {
		t.Fatalf("want %d findings, got %d: %v", len(want), len(got), msgs)
	}
	for _, w := range want {
		found := false
		for _, m := range msgs {
			if m == w {
				found = true
			}
		}
		if !found {
			t.Errorf("missing finding %q in %v", w, msgs)
		}
	}
}

func TestHeadingSlug(t *testing.T) {
	for in, want := range map[string]string{
		"Install & Run":          "install--run",
		"The `engine` package":   "the-engine-package",
		"A_B c-d":                "a_b-c-d",
		"§13. Static analysis":   "13-static-analysis",
		"CPU/GPU sharing (v2.0)": "cpugpu-sharing-v20",
	} {
		if got := headingSlug(in); got != want {
			t.Errorf("headingSlug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMarkdownFilesListsDocsTree(t *testing.T) {
	root := writeTree(t, map[string]string{
		"README.md":       "x",
		"DESIGN.md":       "x",
		"docs/A.md":       "x",
		"docs/sub/B.md":   "x",
		"docs/notes.txt":  "x",
		"SNIPPETS.md":     "x", // exemplar code, intentionally out of scope
		"internal/REA.md": "x", // outside the documentation set
	})
	files, err := MarkdownFiles(root)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"README.md": true, "DESIGN.md": true,
		"docs/A.md": true, "docs/sub/B.md": true,
	}
	if len(files) != len(want) {
		t.Fatalf("files = %v, want exactly %v", files, want)
	}
	for _, f := range files {
		if !want[f] {
			t.Errorf("unexpected file %s", f)
		}
	}
}

// TestRepositoryLinksResolve is the docs-links CI step in test form: every
// relative link in the real documentation set must resolve.
func TestRepositoryLinksResolve(t *testing.T) {
	root := repoRoot(t)
	files, err := MarkdownFiles(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found in repository")
	}
	got, err := CheckMarkdownLinks(root, files)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range got {
		t.Errorf("%s", f)
	}
}
