package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BaselineEntry identifies one accepted finding. Line numbers are
// deliberately absent: a baseline keyed on (file, rule, message) survives
// unrelated edits to the same file.
type BaselineEntry struct {
	// File is the module-relative path of the finding.
	File string `json:"file"`
	// Rule is the analyzer that produced it.
	Rule string `json:"rule"`
	// Msg is the finding's message.
	Msg string `json:"msg"`
	// Why records the justification for carrying the entry. Required:
	// an unexplained baseline entry is itself a drift error.
	Why string `json:"why"`
}

// Baseline is the committed set of accepted findings plus its header
// comment.
type Baseline struct {
	// Comment explains what the file is to someone reading the JSON.
	Comment string `json:"comment"`
	// Findings are the accepted entries, sorted by (file, rule, msg).
	Findings []BaselineEntry `json:"findings"`
}

// baselineKey is the identity a finding is matched under.
func baselineKey(file, rule, msg string) string { return file + "\x00" + rule + "\x00" + msg }

// LoadBaseline reads a baseline file. A missing file is an empty baseline,
// not an error, so a fresh checkout lints strictly.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: baseline %s: %w", path, err)
	}
	return &b, nil
}

// WriteBaseline writes findings as a fresh baseline. Every generated entry
// carries a placeholder justification that the drift check rejects until a
// human replaces it — regenerating the baseline is never silently clean.
func WriteBaseline(path string, findings []Finding) error {
	b := Baseline{
		Comment: "Accepted igpulint findings. Each entry needs a real 'why'; " +
			"fixed findings must be removed (the drift check fails on stale entries).",
	}
	for _, f := range findings {
		b.Findings = append(b.Findings, BaselineEntry{
			File: f.Pos.Filename, Rule: f.Rule, Msg: f.Msg,
			Why: "TODO: justify or fix",
		})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		return baselineKey(a.File, a.Rule, a.Msg) < baselineKey(c.File, c.Rule, c.Msg)
	})
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Drift is the result of comparing current findings against a baseline.
type Drift struct {
	// New are findings absent from the baseline: regressions, fail.
	New []Finding
	// Stale are baseline entries no finding matches anymore: the
	// violation was fixed, so the entry must be deleted, fail.
	Stale []BaselineEntry
	// Unjustified are baseline entries without a real why. Fail.
	Unjustified []BaselineEntry
	// Accepted counts findings matched (and absorbed) by the baseline.
	Accepted int
}

// Clean reports whether the comparison found no drift in either direction.
func (d *Drift) Clean() bool {
	return len(d.New) == 0 && len(d.Stale) == 0 && len(d.Unjustified) == 0
}

// CompareBaseline matches findings against the baseline. Drift in either
// direction fails: new findings are regressions, stale entries are fixed
// violations that must be removed so the ratchet only tightens.
func CompareBaseline(b *Baseline, findings []Finding) *Drift {
	matched := make([]bool, len(b.Findings))
	index := map[string][]int{}
	for i, e := range b.Findings {
		index[baselineKey(e.File, e.Rule, e.Msg)] = append(index[baselineKey(e.File, e.Rule, e.Msg)], i)
	}
	d := &Drift{}
	for _, f := range findings {
		key := baselineKey(f.Pos.Filename, f.Rule, f.Msg)
		hit := -1
		for _, i := range index[key] {
			if !matched[i] {
				hit = i
				break
			}
		}
		if hit < 0 {
			d.New = append(d.New, f)
			continue
		}
		matched[hit] = true
		d.Accepted++
	}
	for i, e := range b.Findings {
		if !matched[i] {
			d.Stale = append(d.Stale, e)
		} else if e.Why == "" || e.Why == "TODO: justify or fix" {
			d.Unjustified = append(d.Unjustified, e)
		}
	}
	return d
}
