package analysis

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteText renders findings one per line in the classic file:line:col
// compiler format.
func WriteText(w io.Writer, findings []Finding) error {
	for _, f := range findings {
		if _, err := fmt.Fprintln(w, f.String()); err != nil {
			return err
		}
	}
	return nil
}

// jsonFinding is the -format json shape of one finding.
type jsonFinding struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
	Rule   string `json:"rule"`
	Msg    string `json:"msg"`
}

// WriteJSON renders findings as a JSON array.
func WriteJSON(w io.Writer, findings []Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File: f.Pos.Filename, Line: f.Pos.Line, Column: f.Pos.Column,
			Rule: f.Rule, Msg: f.Msg,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 skeleton, the minimum GitHub code scanning ingests.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID   string    `json:"id"`
	Desc sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	Physical sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	Artifact sarifArtifact `json:"artifactLocation"`
	Region   sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders findings as a SARIF 2.1.0 log with one rule entry per
// analyzer, the format the CI lint job uploads as an artifact.
func WriteSARIF(w io.Writer, findings []Finding) error {
	var rules []sarifRule
	for _, a := range Analyzers() {
		rules = append(rules, sarifRule{ID: a.Name, Desc: sarifText{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		line := f.Pos.Line
		if line < 1 {
			line = 1
		}
		results = append(results, sarifResult{
			RuleID:  f.Rule,
			Level:   "error",
			Message: sarifText{Text: f.Msg},
			Locations: []sarifLocation{{Physical: sarifPhysical{
				Artifact: sarifArtifact{URI: f.Pos.Filename},
				Region:   sarifRegion{StartLine: line, StartColumn: f.Pos.Column},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "igpulint", Rules: rules}}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&log)
}
