package analysis

import (
	"fmt"
	"go/ast"
)

// ctxFlowAnalyzer enforces context propagation through the simulator's
// service stack. Two invariants:
//
//  1. Library code (CtxBackgroundBanned, by default everything under
//     internal/) never manufactures a root context with
//     context.Background() or context.TODO() — deadlines, cancellation and
//     trace spans only flow if the caller's context is threaded through.
//
//  2. In the contract packages (CtxPackages: engine, framework, microbench,
//     profile, comm) an exported function that calls into context-taking
//     machinery must itself accept a context.Context, and must accept it as
//     the first parameter.
//
// The compiler cannot see either: a dropped context type-checks fine and
// silently detaches a whole subtree from tracing, deadlines and faults.
func ctxFlowAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "ctxflow",
		Doc:  "exported funcs in the contract packages accept and thread context.Context; no context.Background()/TODO() in library code",
		Run: func(pass *Pass) []Finding {
			var out []Finding
			banned := inDirs(pass.Pkg.Dir, pass.Config.CtxBackgroundBanned)
			scoped := inDirs(pass.Pkg.Dir, pass.Config.CtxPackages)
			if !banned && !scoped {
				return nil
			}
			for _, f := range pass.Pkg.Files {
				if banned {
					ast.Inspect(f, func(n ast.Node) bool {
						call, ok := n.(*ast.CallExpr)
						if !ok {
							return true
						}
						for _, name := range []string{"Background", "TODO"} {
							if isPkgFunc(pass, call, "context", name) {
								out = append(out, Finding{
									Pos:  pass.Position(call.Pos()),
									Rule: "ctxflow",
									Msg: fmt.Sprintf("context.%s() in library code; "+
										"thread the caller's context instead", name),
								})
							}
						}
						return true
					})
				}
				if scoped {
					for _, decl := range f.Decls {
						fn, ok := decl.(*ast.FuncDecl)
						if !ok || !fn.Name.IsExported() || fn.Body == nil {
							continue
						}
						out = append(out, checkCtxThreading(pass, fn)...)
					}
				}
			}
			return out
		},
	}
}

// checkCtxThreading applies invariant 2 to one exported function: a context
// parameter must come first, and a function that calls context-taking
// callees must have one.
func checkCtxThreading(pass *Pass, fn *ast.FuncDecl) []Finding {
	ctxIndex := -1
	nparams := 0
	for _, field := range fn.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if t := pass.TypeOf(field.Type); t != nil && isContextType(t) && ctxIndex < 0 {
			ctxIndex = nparams
		}
		nparams += n
	}
	if ctxIndex > 0 {
		return []Finding{{
			Pos:  pass.Position(fn.Pos()),
			Rule: "ctxflow",
			Msg: fmt.Sprintf("exported %s takes context.Context at position %d; "+
				"context must be the first parameter", fn.Name.Name, ctxIndex),
		}}
	}
	if ctxIndex == 0 {
		return nil
	}
	// No context parameter: flag the first call into context-taking
	// machinery — this function breaks the propagation chain.
	var out []Finding
	inspectShallow(fn.Body, func(n ast.Node) bool {
		if len(out) > 0 {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sig := calleeSignature(pass, call)
		if !firstParamIsContext(sig) {
			return true
		}
		callee := "a context-taking function"
		if obj := calleeObject(pass, call); obj != nil {
			callee = obj.Name()
		}
		out = append(out, Finding{
			Pos:  pass.Position(call.Pos()),
			Rule: "ctxflow",
			Msg: fmt.Sprintf("exported %s calls %s but takes no context.Context; "+
				"accept and thread one", fn.Name.Name, callee),
		})
		return false
	})
	return out
}
