package analysis

import (
	"go/token"
	"path/filepath"
	"testing"
)

// TestBaselineRoundTrip drives a baseline through its whole lifecycle:
// generate, load, compare (unjustified placeholders must fail), justify,
// and then drift in both directions.
func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	findings := []Finding{
		{Pos: token.Position{Filename: "internal/a/a.go", Line: 10, Column: 2},
			Rule: "ctxflow", Msg: "context.Background() in library code"},
		{Pos: token.Position{Filename: "internal/b/b.go", Line: 3, Column: 1},
			Rule: "allochot", Msg: "fmt.Sprintf allocates in loop of hot function f"},
	}

	if err := WriteBaseline(path, findings); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 2 {
		t.Fatalf("round-tripped baseline has %d entries, want 2", len(b.Findings))
	}

	// A regenerated baseline matches its own findings but must not be
	// clean: every generated why is a placeholder a human has to replace.
	d := CompareBaseline(b, findings)
	if len(d.New) != 0 || len(d.Stale) != 0 || d.Accepted != 2 {
		t.Fatalf("self-comparison drifted: %+v", d)
	}
	if len(d.Unjustified) != 2 || d.Clean() {
		t.Fatalf("placeholder justifications must fail the drift check: %+v", d)
	}

	// Justified entries are clean, and matching ignores line numbers — the
	// baseline must survive unrelated edits moving the finding.
	for i := range b.Findings {
		b.Findings[i].Why = "accepted for this test"
	}
	moved := append([]Finding(nil), findings...)
	moved[0].Pos.Line = 99
	if d := CompareBaseline(b, moved); !d.Clean() || d.Accepted != 2 {
		t.Fatalf("justified baseline should absorb line-moved findings: %+v", d)
	}

	// One finding fixed, one introduced: drift in both directions.
	changed := []Finding{
		findings[0],
		{Pos: token.Position{Filename: "internal/c/c.go", Line: 7, Column: 4},
			Rule: "spanend", Msg: "span s is never ended"},
	}
	d = CompareBaseline(b, changed)
	if len(d.New) != 1 || len(d.Stale) != 1 || d.Clean() {
		t.Fatalf("want 1 new + 1 stale, got %+v", d)
	}

	// A missing baseline file loads empty, so a fresh checkout lints
	// strictly: everything is new.
	empty, err := LoadBaseline(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatal(err)
	}
	if d := CompareBaseline(empty, findings); len(d.New) != 2 || d.Clean() {
		t.Fatalf("empty baseline should report every finding as new: %+v", d)
	}
}
