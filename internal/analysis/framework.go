package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named rule over the type-checked module. A rule implements
// Run (called once per package) or RunModule (called once with the whole
// module, for cross-package invariants like the fault-point catalog), or
// both.
type Analyzer struct {
	// Name is the rule identifier findings carry ("ctxflow", "spanend"...).
	Name string
	// Doc is the one-line invariant statement `igpulint -list` prints.
	Doc string
	// Run, when non-nil, analyzes one package.
	Run func(*Pass) []Finding
	// RunModule, when non-nil, analyzes the whole module at once.
	RunModule func(*ModulePass) []Finding
}

// Pass is the per-package unit of work handed to an Analyzer's Run: one
// package of the loaded module plus the shared config.
type Pass struct {
	// Fset is the module's shared FileSet.
	Fset *token.FileSet
	// Pkg is the package under analysis.
	Pkg *Package
	// Module is the whole loaded module (for cross-package lookups).
	Module *Module
	// Config is the run's rule configuration.
	Config *Config
}

// TypeOf returns the static type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Pkg.Info == nil {
		return nil
	}
	return p.Pkg.Info.Types[e].Type
}

// ObjectOf resolves an identifier to its object (use or definition).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.Pkg.Info == nil {
		return nil
	}
	if o := p.Pkg.Info.Uses[id]; o != nil {
		return o
	}
	return p.Pkg.Info.Defs[id]
}

// Position resolves a token.Pos against the module FileSet.
func (p *Pass) Position(pos token.Pos) token.Position { return p.Fset.Position(pos) }

// ModulePass is the whole-module unit of work handed to RunModule.
type ModulePass struct {
	// Module is the loaded module.
	Module *Module
	// Config is the run's rule configuration.
	Config *Config
}

// Passes enumerates a per-package Pass for every module package.
func (mp *ModulePass) Passes() []*Pass {
	out := make([]*Pass, 0, len(mp.Module.Packages))
	for _, pkg := range mp.Module.Packages {
		out = append(out, &Pass{Fset: mp.Module.Fset, Pkg: pkg, Module: mp.Module, Config: mp.Config})
	}
	return out
}

// inDirs reports whether a module-relative package dir sits at or under any
// of the given slash-form prefixes.
func inDirs(dir string, prefixes []string) bool {
	for _, p := range prefixes {
		if dir == p || strings.HasPrefix(dir, p+"/") {
			return true
		}
	}
	return false
}

// Analyzers returns the full analyzer set in presentation order: the three
// original syntactic rules plus the type-aware rules this framework added.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		rawAddrAnalyzer(),
		unitsMixAnalyzer(),
		validateWrapAnalyzer(),
		ctxFlowAnalyzer(),
		spanEndAnalyzer(),
		faultPointAnalyzer(),
		lockDisciplineAnalyzer(),
		allocHotAnalyzer(),
		metricNameAnalyzer(),
		timeSourceAnalyzer(),
	}
}

// AnalyzerNames lists the names of the full analyzer set.
func AnalyzerNames() []string {
	all := Analyzers()
	out := make([]string, len(all))
	for i, a := range all {
		out[i] = a.Name
	}
	return out
}

// RunAnalyzers loads nothing: it applies the given analyzers to an
// already-loaded module, applies //igpulint:ignore suppressions, rewrites
// positions module-relative, and returns findings sorted by position.
func RunAnalyzers(m *Module, analyzers []*Analyzer, cfg *Config) []Finding {
	var out []Finding
	mp := &ModulePass{Module: m, Config: cfg}
	for _, a := range analyzers {
		if a.Run != nil {
			for _, pass := range mp.Passes() {
				out = append(out, a.Run(pass)...)
			}
		}
		if a.RunModule != nil {
			out = append(out, a.RunModule(mp)...)
		}
	}
	out = relativizeFindings(m.Root, out)
	out = applySuppressions(m, out)
	sortFindings(out)
	return out
}

// RunRepo is the one-call entry the drivers use: load the module rooted at
// root, run every analyzer (or just the named ones), and return the
// surviving findings. Type-check failures come back as findings under the
// pseudo-rule "typecheck" so a broken tree is visible, not silently clean.
func RunRepo(root string, cfg *Config, only []string) ([]Finding, error) {
	m, err := LoadModule(root)
	if err != nil {
		return nil, err
	}
	analyzers := Analyzers()
	if len(only) > 0 {
		want := map[string]bool{}
		for _, n := range only {
			want[n] = true
		}
		kept := analyzers[:0]
		for _, a := range analyzers {
			if want[a.Name] {
				kept = append(kept, a)
				delete(want, a.Name)
			}
		}
		for n := range want {
			return nil, fmt.Errorf("analysis: unknown rule %q (have %s)",
				n, strings.Join(AnalyzerNames(), ", "))
		}
		analyzers = kept
	}
	findings := RunAnalyzers(m, analyzers, cfg)
	for _, pkg := range m.Packages {
		for _, terr := range pkg.TypeErrors {
			findings = append(findings, Finding{
				Pos:  token.Position{Filename: pkg.Dir},
				Rule: "typecheck",
				Msg:  terr.Error(),
			})
		}
	}
	sortFindings(findings)
	return findings, nil
}

// relativizeFindings rewrites absolute finding filenames module-relative
// (slash form), the coordinate system the baseline file uses so it stays
// stable across checkouts.
func relativizeFindings(root string, fs []Finding) []Finding {
	prefix := root + "/"
	for i := range fs {
		name := strings.ReplaceAll(fs[i].Pos.Filename, "\\", "/")
		if rest, ok := strings.CutPrefix(name, strings.ReplaceAll(prefix, "\\", "/")); ok {
			fs[i].Pos.Filename = rest
		}
	}
	return fs
}

// ignoreDirective is the inline suppression marker. A comment of the form
//
//	//igpulint:ignore <rule> <justification>
//
// on the flagged line, or alone on the line above it, suppresses that rule
// there. The justification is mandatory: a bare ignore is itself a finding.
const ignoreDirective = "//igpulint:ignore"

// suppression is one parsed ignore directive.
type suppression struct {
	rule   string
	line   int
	hasWhy bool
	used   bool
	pos    token.Position
}

// applySuppressions honors //igpulint:ignore directives and reports
// malformed (no justification) or unused ones as "igpulint" findings, so
// suppressions can never rot silently.
func applySuppressions(m *Module, fs []Finding) []Finding {
	// file (module-relative) -> line -> suppressions on that line
	byFile := map[string]map[int][]*suppression{}
	var all []*suppression
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignoreDirective) {
						continue
					}
					rest := strings.TrimPrefix(c.Text, ignoreDirective)
					fields := strings.Fields(rest)
					pos := m.Fset.Position(c.Pos())
					rel := pos
					if r, ok := strings.CutPrefix(strings.ReplaceAll(pos.Filename, "\\", "/"),
						strings.ReplaceAll(m.Root, "\\", "/")+"/"); ok {
						rel.Filename = r
					}
					s := &suppression{line: pos.Line, pos: rel}
					if len(fields) > 0 {
						s.rule = fields[0]
					}
					s.hasWhy = len(fields) > 1
					if byFile[rel.Filename] == nil {
						byFile[rel.Filename] = map[int][]*suppression{}
					}
					byFile[rel.Filename][pos.Line] = append(byFile[rel.Filename][pos.Line], s)
					all = append(all, s)
				}
			}
		}
	}

	kept := fs[:0]
	for _, f := range fs {
		if s := matchSuppression(byFile, f); s != nil && s.hasWhy {
			s.used = true
			continue
		}
		kept = append(kept, f)
	}
	for _, s := range all {
		switch {
		case !s.hasWhy:
			kept = append(kept, Finding{Pos: s.pos, Rule: "igpulint",
				Msg: fmt.Sprintf("ignore directive for %q has no justification", s.rule)})
		case !s.used:
			kept = append(kept, Finding{Pos: s.pos, Rule: "igpulint",
				Msg: fmt.Sprintf("ignore directive for %q suppresses nothing; remove it", s.rule)})
		}
	}
	return kept
}

// matchSuppression finds a directive covering the finding: same rule, same
// file, on the finding's line or the line directly above.
func matchSuppression(byFile map[string]map[int][]*suppression, f Finding) *suppression {
	lines := byFile[f.Pos.Filename]
	if lines == nil {
		return nil
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		for _, s := range lines[line] {
			if s.rule == f.Rule {
				return s
			}
		}
	}
	return nil
}
