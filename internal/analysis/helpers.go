package analysis

import (
	"go/ast"
	"go/types"
)

// calleeObject resolves the object a call expression invokes (a *types.Func
// for ordinary and method calls, a *types.Var for calls through function
// values), or nil for conversions and builtins.
func calleeObject(pass *Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.ObjectOf(fun)
	case *ast.SelectorExpr:
		return pass.ObjectOf(fun.Sel)
	}
	return nil
}

// isPkgFunc reports whether a call invokes the function named name from the
// package whose import path is exactly pkgPath or ends with "/"+pkgPath.
func isPkgFunc(pass *Pass, call *ast.CallExpr, pkgPath, name string) bool {
	obj := calleeObject(pass, call)
	if obj == nil || obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return hasPathSuffix(obj.Pkg().Path(), pkgPath)
}

// calleeSignature returns the static signature of a call's callee, or nil
// for conversions and builtins.
func calleeSignature(pass *Pass, call *ast.CallExpr) *types.Signature {
	if pass.Pkg.Info == nil {
		return nil
	}
	tv, ok := pass.Pkg.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.(*types.Signature)
	return sig
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// firstParamIsContext reports whether a signature's first parameter is a
// context.Context.
func firstParamIsContext(sig *types.Signature) bool {
	return sig != nil && sig.Params().Len() > 0 &&
		isContextType(sig.Params().At(0).Type())
}

// funcScopes collects every function body in a file as its own analysis
// scope: each FuncDecl and each FuncLit. Spans and locks are reasoned about
// within one scope at a time.
type funcScope struct {
	name string // declared name, or "func literal"
	body *ast.BlockStmt
}

func funcScopes(f *ast.File) []funcScope {
	var out []funcScope
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, funcScope{name: fn.Name.Name, body: fn.Body})
			}
		case *ast.FuncLit:
			out = append(out, funcScope{name: "func literal", body: fn.Body})
		}
		return true
	})
	return out
}

// inspectShallow walks n but does not descend into nested function
// literals, so a scope's analysis stays within that scope. The literal node
// itself is still visited — callers like the allochot closure check need to
// see it — only its body is pruned.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit && m != n {
			fn(m)
			return false
		}
		return fn(m)
	})
}
