package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// wallClockFuncs are the package-level time functions that read or wait on
// the wall clock. Every one of them defeats the deterministic simulation
// harness: a virtual-time run that calls time.Sleep stalls on real seconds,
// and a time.Now comparison observes a clock the seeded scheduler does not
// control. time.Since and time.Until are included because they call
// time.Now internally; time.NewTicker/Tick/AfterFunc because they are the
// same wait dressed up as a stream or a callback.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
	"AfterFunc": true,
	"Since":     true,
	"Until":     true,
}

// timeSourceAnalyzer forbids direct wall-clock access in the packages that
// run under deterministic simulation (TimePackages). Those packages thread
// a Clock (simnet.Clock in production: the real clock; in DST: the seeded
// virtual clock), and one stray time.Now() is enough to make a "same seed,
// same run" replay lie — the run completes, but its timeouts, backoff and
// TTL decisions came from a clock the seed does not control. The compiler
// cannot see this; only the import graph can.
//
// Pure constants (time.Millisecond) and types (time.Duration, time.Time)
// remain free: the rule bans reading the clock, not speaking its units.
func timeSourceAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "timesource",
		Doc:  "no direct time.Now/Sleep/After/NewTimer/... in simulation-scoped packages; thread the Clock",
		Run: func(pass *Pass) []Finding {
			if !inDirs(pass.Pkg.Dir, pass.Config.TimePackages) {
				return nil
			}
			var out []Finding
			for _, f := range pass.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					obj := calleeObject(pass, call)
					fn, ok := obj.(*types.Func)
					// Only package-level functions read the wall clock;
					// methods like t.After(u) or timer.Reset(d) operate on a
					// value something else already stamped.
					if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
						return true
					}
					sig, _ := fn.Type().(*types.Signature)
					if sig == nil || sig.Recv() != nil {
						return true
					}
					for name := range wallClockFuncs {
						if fn.Name() == name {
							out = append(out, Finding{
								Pos:  pass.Position(call.Pos()),
								Rule: "timesource",
								Msg: fmt.Sprintf("time.%s reads the wall clock in a "+
									"simulation-scoped package; thread the Clock instead", name),
							})
						}
					}
					return true
				})
			}
			return out
		},
	}
}
