package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis: its
// parsed files, the go/types object graph, and its module-relative directory
// (the key the per-rule scoping configs use).
type Package struct {
	// Dir is the package directory relative to the module root, in slash
	// form ("." for the module root itself).
	Dir string
	// Path is the package's import path.
	Path string
	// Files are the parsed non-test source files, in filename order.
	Files []*ast.File
	// Types is the type-checked package object. It is non-nil even when
	// type checking reported errors (go/types returns a partial package).
	Types *types.Package
	// Info carries the expression-type, object-resolution and selection
	// tables the type-aware analyzers consume.
	Info *types.Info
	// TypeErrors collects any type-checking failures. The analyzers run
	// on partial information when this is non-empty; the driver surfaces
	// the errors so a broken tree is never silently "clean".
	TypeErrors []error
}

// Module is a fully loaded module: every package parsed and type-checked
// against one shared FileSet, in deterministic (directory) order.
type Module struct {
	// Root is the absolute module root (the directory holding go.mod).
	Root string
	// Path is the module path declared in go.mod.
	Path string
	// Fset is the FileSet every package was parsed into.
	Fset *token.FileSet
	// Packages lists the module's packages sorted by Dir.
	Packages []*Package
}

// PackageByPath returns the module package with the given import path, or
// nil when the path is not part of the module.
func (m *Module) PackageByPath(path string) *Package {
	for _, p := range m.Packages {
		if p.Path == path {
			return p
		}
	}
	return nil
}

// LoadModule parses and type-checks every non-test package under root
// (skipping .git, vendor and testdata) using only the standard library:
// module-local imports resolve against the loaded set, everything else goes
// through the source importer against GOROOT. Type-check errors are
// collected per package, not fatal, so one broken file does not hide every
// other package's findings.
func LoadModule(root string) (*Module, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	m := &Module{Root: root, Path: modPath, Fset: fset}
	byPath := make(map[string]*Package, len(dirs))
	for _, dir := range dirs {
		p, err := parseDir(fset, root, dir, modPath)
		if err != nil {
			return nil, err
		}
		if p == nil {
			continue // no buildable files
		}
		m.Packages = append(m.Packages, p)
		byPath[p.Path] = p
	}

	imp := &moduleImporter{
		module:   m,
		byPath:   byPath,
		checking: make(map[string]bool),
		fallback: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
	for _, p := range m.Packages {
		if _, err := imp.check(p); err != nil {
			return nil, fmt.Errorf("analysis: type-check %s: %w", p.Path, err)
		}
	}
	return m, nil
}

// modulePath reads the module declaration from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module declaration in %s/go.mod", root)
}

// packageDirs walks root for directories containing at least one non-test
// .go file, skipping .git, vendor and testdata trees. Directories come back
// module-relative in slash form, sorted.
func packageDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "vendor", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		seen[filepath.ToSlash(rel)] = true
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir parses the non-test files of one package directory. Returns nil
// when the directory has no buildable Go files.
func parseDir(fset *token.FileSet, root, dir, modPath string) (*Package, error) {
	full := filepath.Join(root, filepath.FromSlash(dir))
	entries, err := os.ReadDir(full)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(full, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	path := modPath
	if dir != "." {
		path = modPath + "/" + dir
	}
	return &Package{Dir: dir, Path: path, Files: files}, nil
}

// moduleImporter resolves module-local imports from the loaded package set
// (type-checking them on demand, in dependency order) and delegates
// everything else — the standard library — to the source importer.
type moduleImporter struct {
	module   *Module
	byPath   map[string]*Package
	checking map[string]bool
	fallback types.ImporterFrom
}

// Import implements types.Importer.
func (imp *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := imp.byPath[path]; ok {
		return imp.check(p)
	}
	return imp.fallback.ImportFrom(path, imp.module.Root, 0)
}

// check type-checks p (once) and returns its types.Package. Import cycles
// inside the module are a hard error — the compiler would reject them too.
func (imp *moduleImporter) check(p *Package) (*types.Package, error) {
	if p.Types != nil {
		return p.Types, nil
	}
	if imp.checking[p.Path] {
		return nil, fmt.Errorf("import cycle through %s", p.Path)
	}
	imp.checking[p.Path] = true
	defer delete(imp.checking, p.Path)

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	pkg, err := conf.Check(p.Path, imp.module.Fset, p.Files, info)
	if err != nil && pkg == nil {
		return nil, err
	}
	p.Types = pkg
	p.Info = info
	return pkg, nil
}
