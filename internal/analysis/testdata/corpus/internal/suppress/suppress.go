// Package suppress exercises the //igpulint:ignore machinery: justified
// directives absorb findings, bare and unused ones are findings themselves.
package suppress

import "context"

// root builds the one process-level root context this fixture allows; the
// justified directive on the line above absorbs the ctxflow finding.
func root() context.Context {
	//igpulint:ignore ctxflow corpus fixture: the suppressed root is the point
	return context.Background()
}

// todo shows a same-line directive covering its own line.
func todo() context.Context {
	return context.TODO() //igpulint:ignore ctxflow same-line directives cover their own line
}

/* want igpulint "no justification" */ //igpulint:ignore ctxflow

/* want igpulint "suppresses nothing" */ //igpulint:ignore spanend nothing here opens a span
