// Package faultuser exercises the faultpoint contract: constant and
// Register-var names fire cleanly; dynamic names and catalog drift do not.
package faultuser

import "fixture/internal/faults"

var ptRegistered = faults.Register("corpus/registered")

var ptVar = faults.Register("corpus/varpoint")

// Good fires catalogued points through a constant and a Register var.
func Good() error {
	_ = ptRegistered
	if err := faults.Fire("corpus/registered"); err != nil {
		return err
	}
	return faults.Fire(ptVar)
}

// Bad trips every faultpoint failure mode.
func Bad(name string) error {
	faults.Register("corpus/unlisted") // want faultpoint "not declared in faults.Catalog"
	faults.Register("corpus/dup")
	faults.Register("corpus/dup")             // want faultpoint "registered more than once"
	faults.Register(name)                     // want faultpoint "not a compile-time string constant"
	if err := faults.Fire(name); err != nil { // want faultpoint "dynamic"
		return err
	}
	return faults.Fire("corpus/unregistered") // want faultpoint "fired but never registered"
}
