// Package fleet exercises the timesource rule: this directory is in the
// default TimePackages set, so every direct wall-clock read is a finding,
// while Clock threading, duration constants and time-typed values stay
// quiet.
package fleet

import (
	"context"
	"time"
)

// Clock is the threaded time source; the good shape reads time only
// through it.
type Clock interface {
	Now() time.Time
	Sleep(ctx context.Context, d time.Duration) error
}

// Router retries through its clock.
type Router struct {
	clock    Clock
	deadline time.Time
	backoff  time.Duration // a duration-typed field is fine: units, not reads
}

// Wait is the good shape: the pause and the deadline both come from the
// threaded clock, so a virtual-time run controls them.
func (r *Router) Wait(ctx context.Context) error {
	if r.clock.Now().After(r.deadline) {
		return context.DeadlineExceeded
	}
	return r.clock.Sleep(ctx, r.backoff)
}

// Stamp reads the wall clock directly.
func (r *Router) Stamp() time.Time {
	return time.Now() // want timesource "time.Now"
}

// Pause stalls a virtual-time run on real seconds.
func (r *Router) Pause() {
	time.Sleep(r.backoff) // want timesource "time.Sleep"
}

// Expire waits on a real timer dressed up as a channel.
func (r *Router) Expire(ctx context.Context) error {
	select {
	case <-time.After(r.backoff): // want timesource "time.After"
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Age hides the clock read inside time.Since.
func (r *Router) Age() time.Duration {
	return time.Since(r.deadline) // want timesource "time.Since"
}

// Arm builds a real timer and ticker.
func (r *Router) Arm() (*time.Timer, *time.Ticker) {
	t := time.NewTimer(r.backoff)  // want timesource "time.NewTimer"
	k := time.NewTicker(r.backoff) // want timesource "time.NewTicker"
	return t, k
}
