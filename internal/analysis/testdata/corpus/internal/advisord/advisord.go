// Package advisord exercises the blocking-under-lock side of
// lockdiscipline: this directory is in the default LockPackages set.
package advisord

import (
	"sync"
	"time"
)

// Queue is a tiny guarded queue.
type Queue struct {
	mu    sync.Mutex
	items []int
	ch    chan int
	wg    sync.WaitGroup
}

// Push appends under the lock and signals after releasing it; the good
// shape — the blocking send sits outside the critical section.
func (q *Queue) Push(v int) {
	q.mu.Lock()
	q.items = append(q.items, v)
	q.mu.Unlock()
	q.ch <- v
}

// BlockingSend sends on a channel while the lock is held.
func (q *Queue) BlockingSend(v int) {
	q.mu.Lock()
	q.ch <- v // want lockdiscipline "channel send"
	q.mu.Unlock()
}

// SleepUnderDefer holds the lock to function exit and sleeps inside it.
func (q *Queue) SleepUnderDefer() {
	q.mu.Lock()
	defer q.mu.Unlock()
	time.Sleep(time.Millisecond) // want lockdiscipline "time.Sleep" timesource "time.Sleep"
}

// ReceiveAndWait blocks twice inside one lock window.
func (q *Queue) ReceiveAndWait() int {
	q.mu.Lock()
	v := <-q.ch // want lockdiscipline "channel receive"
	q.wg.Wait() // want lockdiscipline "WaitGroup.Wait"
	q.mu.Unlock()
	return v
}
