// Package spans exercises the spanend rule against the telemetry stub.
package spans

import (
	"context"
	"errors"

	"fixture/internal/telemetry"
)

var errClosed = errors.New("spans: closed")

// Traced opens a span and defers its End; the good shape.
func Traced(ctx context.Context) {
	ctx, span := telemetry.Start(ctx, "traced")
	defer span.End()
	use(ctx)
}

// DeferredClosure ends the span from a deferred literal; also fine.
func DeferredClosure(ctx context.Context) {
	ctx, span := telemetry.Start(ctx, "closure")
	defer func() {
		span.End()
	}()
	use(ctx)
}

// Discarded throws the span away.
func Discarded(ctx context.Context) {
	ctx, _ = telemetry.Start(ctx, "blind") // want spanend "discarded"
	use(ctx)
}

// Leaked keeps the span but never ends it.
func Leaked(ctx context.Context) {
	_, span := telemetry.Start(ctx, "leaked") // want spanend "never ended"
	_ = span
}

// EarlyReturn ends the span, but a return escapes before End.
func EarlyReturn(ctx context.Context, fail bool) error {
	ctx, span := telemetry.Start(ctx, "early") // want spanend "does not dominate"
	if fail {
		return errClosed
	}
	use(ctx)
	span.End()
	return nil
}

func use(ctx context.Context) {}
