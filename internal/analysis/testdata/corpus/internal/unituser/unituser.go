// Package unituser exercises the typed unitsmix rule: mixing unit classes
// fires even when the quantities are laundered through float64 conversions.
package unituser

import (
	"time"

	"fixture/internal/units"
)

// Mix adds quantities across unit classes.
func Mix(lat units.Latency, cyc units.Cycles, bw units.BytesPerSecond, hz units.Hertz, d time.Duration) float64 {
	a := float64(lat) + float64(cyc) // want unitsmix "adding latency to cycles"
	b := float64(bw) - float64(hz)   // want unitsmix "adding bandwidth to frequency"
	c := float64(d) + float64(cyc)   // want unitsmix "adding latency to cycles"
	return a + b + c
}

// Quiet shows same-domain arithmetic and explicit rates staying clean.
func Quiet(lat, lat2 units.Latency, bw units.BytesPerSecond) float64 {
	sum := lat + lat2
	secs := float64(sum)
	rate := 1024.0 / float64(bw)
	return secs + rate
}

// NameHeuristic still fires on suggestively named plain floats, as the
// original syntactic rule did.
func NameHeuristic(copyTime, dramBytes float64) float64 {
	return copyTime + dramBytes // want unitsmix "adding latency to bytes"
}
