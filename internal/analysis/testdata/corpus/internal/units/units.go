// Package units is a corpus stub of the quantity types the typed unitsmix
// rule tracks through conversions.
package units

// Latency is wall time in seconds.
type Latency float64

// Cycles counts ticks of one clock domain.
type Cycles float64

// Hertz is a clock frequency.
type Hertz float64

// BytesPerSecond is a transfer rate.
type BytesPerSecond float64
