// Package metrics exercises the metricname contract against the telemetry
// stub registry.
package metrics

import "fixture/internal/telemetry"

var dynamic = "igpucomm_corpus_dynamic_total"

// RegisterAll registers one metric of every shape the rule distinguishes.
func RegisterAll(reg *telemetry.Registry) {
	reg.Counter("igpucomm_corpus_requests_total", "good counter")
	reg.Gauge("igpucomm_corpus_queue_entries", "good gauge")
	reg.Counter("wrong_requests_total", "bad prefix")     // want metricname "namespace"
	reg.Counter("igpucomm_corpus_requests_count", "unit") // want metricname "recognized unit"
	reg.Counter("igpucomm_CamelCase_total", "shape")      // want metricname "lower_snake_case"
	reg.Counter(dynamic, "dynamic name")                  // want metricname "not a compile-time constant"
	reg.Gauge("igpucomm_corpus_queue_entries", "dup")     // want metricname "2 sites"
	reg.Gauge("igpucomm_heatmap_hot_pages", "heat")       // want metricname "recognized unit"

	// Tracer.Counter shares the method name but records trace samples, not
	// Prometheus metrics: dynamic names are fine here and must not fire.
	var tr telemetry.Tracer
	tr.Counter(dynamic, 1.0)
}
