// Package locks exercises the lock-copy and mixed-atomic sides of
// lockdiscipline, which apply in every package.
package locks

import (
	"sync"
	"sync/atomic"
)

// Guarded couples a mutex with the counter it guards.
type Guarded struct {
	mu sync.Mutex
	n  int64
}

// ByValue receives the guard by value: the copied lock guards nothing.
func ByValue(g Guarded) int64 { // want lockdiscipline "copies a lock-bearing value"
	return g.n
}

// ValueReceiver copies the lock through its receiver.
func (g Guarded) ValueReceiver() int64 { // want lockdiscipline "copies a lock-bearing value"
	return g.n
}

// ByPointer is the correct shape.
func ByPointer(g *Guarded) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// RangeCopies copies each element's lock through the range value.
func RangeCopies(gs []Guarded) int64 {
	var total int64
	for _, g := range gs { // want lockdiscipline "range variable"
		total += g.n
	}
	return total
}

// Hits is a counter accessed through sync/atomic.
type Hits struct {
	ops  int64
	cold int64
}

// Bump increments atomically.
func (h *Hits) Bump() { atomic.AddInt64(&h.ops, 1) }

// Reset mixes a plain write into the atomically accessed field; the
// plain-only field stays quiet.
func (h *Hits) Reset() {
	h.ops = 0 // want lockdiscipline "forfeits atomicity"
	h.cold = 0
}
