// Package app is application-level code: raw address arithmetic is banned
// here and Validate errors must carry the package prefix.
package app

import (
	"errors"
	"fmt"
)

// Buffer is a placed buffer as application code sees it.
type Buffer struct {
	Addr int64
	Size int64
}

// NextAddr computes a raw address outside the memory system.
func NextAddr(b Buffer) int64 {
	return b.Addr + b.Size // want rawaddr "raw arithmetic"
}

// Config is a validated configuration.
type Config struct {
	Ways int
}

// Validate checks the configuration; its errors must open with "app".
func (c *Config) Validate() error {
	if c.Ways < 0 {
		return fmt.Errorf("negative ways: %d", c.Ways) // want validatewrap "must be prefixed"
	}
	if c.Ways == 0 {
		return errors.New("app: ways not set")
	}
	return nil
}
