// Package engine exercises the ctxflow contract: this directory is in the
// default CtxPackages set, so exported functions must accept and thread
// context.Context, and (as everywhere under internal/) no root context may
// be manufactured.
package engine

import "context"

// Run threads the caller's context; the good shape.
func Run(ctx context.Context, n int) error {
	return work(ctx, n)
}

// Pure does no context work and needs no context.
func Pure(n int) int { return 2 * n }

// Misplaced buries the context mid-signature.
func Misplaced(n int, ctx context.Context) error { // want ctxflow "position 1"
	return work(ctx, n)
}

// Detached calls context-taking machinery without accepting a context.
func Detached(n int) error {
	return work(nil, n) // want ctxflow "takes no context.Context"
}

func work(ctx context.Context, n int) error { return nil }

func detachedHelper(n int) error {
	ctx := context.Background() // want ctxflow "context.Background"
	return work(ctx, n)
}
