// Package cache sits in the default HotPackages set: every loop in every
// function here is policed by allochot. It is also in RawAddrAllowed, so
// the raw address arithmetic at the bottom stays quiet.
package cache

import "fmt"

// Names formats per iteration; the classic hot-loop allocation.
func Names(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprintf("way-%d", i)) // want allochot "fmt.Sprintf allocates"
	}
	return out
}

// Grow appends without preallocating.
func Grow(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // want allochot "without preallocation"
	}
	return out
}

// Box passes concrete values into an interface parameter per iteration.
func Box(vs []int) {
	for _, v := range vs {
		sink(v) // want allochot "boxes into interface parameter"
	}
}

func sink(v any) { _ = v }

// Capture allocates a closure per iteration.
func Capture(vs []int) int {
	total := 0
	for _, v := range vs {
		add := func() { total += v } // want allochot "closure capturing"
		add()
	}
	return total
}

// Lookup errors on the cold path; fmt.Errorf inside a hot loop is exempt.
func Lookup(keys []string, m map[string]int) (int, error) {
	total := 0
	for _, k := range keys {
		v, ok := m[k]
		if !ok {
			return 0, fmt.Errorf("cache: no entry %q", k)
		}
		total += v
	}
	return total, nil
}

type line struct{ Addr int64 }

// index does raw .Addr arithmetic; allowed here, banned in internal/app.
func index(l line, off int64) int64 { return l.Addr + off }
