// Package faults is a corpus stub of the fault-injection registry; the
// faultpoint analyzer cross-checks every Register/Fire site against Catalog.
package faults

// Catalog is the committed fault-point catalog.
var Catalog = []string{
	"corpus/registered",
	"corpus/varpoint",
	"corpus/dup",
	"corpus/orphan", // want faultpoint "orphan"
}

// Register declares a fault point and returns its handle.
func Register(name string) string { return name }

// Fire triggers a fault point.
func Fire(name string) error { return nil }

// FireData triggers a fault point with a payload.
func FireData(name string, data int) error { return nil }
