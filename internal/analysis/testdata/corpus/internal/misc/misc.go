// Package misc sits outside HotPackages: only the //igpu:hot marker puts a
// function here under allochot.
package misc

import "fmt"

// MarkedHot is explicitly marked hot, so both the Sprint call and the
// unsized append in its loop are findings.
//
//igpu:hot
func MarkedHot(n int) []string {
	var out []string
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprint(i)) // want allochot "fmt.Sprint allocates" allochot "without preallocation"
	}
	return out
}

// NotHot is identical but unmarked, so allochot stays quiet.
func NotHot(n int) []string {
	var out []string
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprint(i))
	}
	return out
}
