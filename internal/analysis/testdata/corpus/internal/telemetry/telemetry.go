// Package telemetry is a corpus stub: just enough of the real telemetry
// surface for the spanend and metricname analyzers to resolve through the
// type checker (isPkgFunc matches package paths by suffix, so
// fixture/internal/telemetry stands in for the real package).
package telemetry

import "context"

// Span is a stub span.
type Span struct{}

// End closes the span.
func (s *Span) End() {}

// Start opens a span under ctx.
func Start(ctx context.Context, name string, attrs ...string) (context.Context, *Span) {
	_ = name
	_ = attrs
	return ctx, &Span{}
}

// Registry is a stub metric registry.
type Registry struct{}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers a counter metric.
func (r *Registry) Counter(name, help string) {}

// Gauge registers a gauge metric.
func (r *Registry) Gauge(name, help string) {}

// GaugeFunc registers a callback gauge metric.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {}

// Tracer is a stub trace recorder. It reuses the Counter method name with a
// different contract (Chrome trace counter samples, not Prometheus metrics),
// so metricname must leave it alone.
type Tracer struct{}

// Counter records a trace counter sample.
func (t *Tracer) Counter(name string, values ...float64) {}
