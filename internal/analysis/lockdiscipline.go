package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// lockDisciplineAnalyzer enforces three locking invariants the race
// detector can only catch dynamically (and only on exercised schedules):
//
//   - no mutex-bearing value is copied through a parameter, receiver or
//     range variable (a copied lock guards nothing);
//
//   - in the concurrent service packages (LockPackages) no blocking
//     operation — channel send or receive, WaitGroup.Wait, time.Sleep —
//     runs while a mutex is held, because a blocked lock-holder turns every
//     other user of that lock into a convoy (or a deadlock);
//
//   - no field is accessed both through sync/atomic and by plain
//     assignment: mixing the two silently forfeits atomicity.
func lockDisciplineAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "lockdiscipline",
		Doc:  "no mutex copies, no blocking ops under a held lock in hot packages, no mixed atomic+plain field access",
		Run: func(pass *Pass) []Finding {
			var out []Finding
			out = append(out, checkLockCopies(pass)...)
			if inDirs(pass.Pkg.Dir, pass.Config.LockPackages) {
				out = append(out, checkBlockingUnderLock(pass)...)
			}
			out = append(out, checkMixedAtomic(pass)...)
			return out
		},
	}
}

// --- mutex value copies ---

// containsLock reports whether a type transitively embeds a sync lock (or
// another by-value-uncopyable sync primitive).
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Named:
		obj := u.Obj()
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
				return true
			}
		}
		return containsLock(u.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

// checkLockCopies flags by-value parameters, receivers and range variables
// of lock-bearing types.
func checkLockCopies(pass *Pass) []Finding {
	var out []Finding
	flag := func(pos ast.Node, what, name string) {
		out = append(out, Finding{
			Pos:  pass.Position(pos.Pos()),
			Rule: "lockdiscipline",
			Msg:  fmt.Sprintf("%s %s copies a lock-bearing value; pass a pointer", what, name),
		})
	}
	checkFieldList(pass, flag, "parameter")
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok || rng.Value == nil {
				return true
			}
			// A := range clause defines the value ident, so its type lives
			// in Defs, not in the expression-type table.
			t := pass.TypeOf(rng.Value)
			if t == nil {
				if id, isIdent := rng.Value.(*ast.Ident); isIdent {
					if obj := pass.ObjectOf(id); obj != nil {
						t = obj.Type()
					}
				}
			}
			if t != nil && containsLock(t, map[types.Type]bool{}) {
				flag(rng.Value, "range variable", types.ExprString(rng.Value))
			}
			return true
		})
	}
	return out
}

// checkFieldList applies the lock-copy check to every function's parameters
// and receiver.
func checkFieldList(pass *Pass, flag func(ast.Node, string, string), what string) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			lists := []*ast.FieldList{fn.Type.Params}
			if fn.Recv != nil {
				lists = append(lists, fn.Recv)
			}
			for _, list := range lists {
				if list == nil {
					continue
				}
				for _, field := range list.List {
					t := pass.TypeOf(field.Type)
					if t == nil {
						continue
					}
					if _, isPtr := t.(*types.Pointer); isPtr {
						continue
					}
					if containsLock(t, map[types.Type]bool{}) {
						name := types.ExprString(field.Type)
						role := what
						if list == fn.Recv {
							role = "receiver"
						}
						flag(field, role, name)
					}
				}
			}
		}
	}
}

// --- blocking operations under a held lock ---

// checkBlockingUnderLock scans each statement list for Lock()..Unlock()
// windows (including defer-Unlock, which holds to function exit) and flags
// channel sends/receives, WaitGroup.Wait and time.Sleep inside the window.
func checkBlockingUnderLock(pass *Pass) []Finding {
	var out []Finding
	for _, f := range pass.Pkg.Files {
		for _, scope := range funcScopes(f) {
			ast.Inspect(scope.body, func(n ast.Node) bool {
				if _, isLit := n.(*ast.FuncLit); isLit {
					return false // nested scopes are visited on their own
				}
				block, ok := n.(*ast.BlockStmt)
				if !ok {
					return true
				}
				out = append(out, scanLockWindows(pass, block.List)...)
				return true
			})
		}
	}
	return out
}

// scanLockWindows walks one statement list tracking which lock expressions
// are held after each statement.
func scanLockWindows(pass *Pass, stmts []ast.Stmt) []Finding {
	var out []Finding
	held := map[string]bool{} // lock receiver expression -> held
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if recv, kind := lockCall(s.X); kind == "lock" {
				held[recv] = true
				continue
			} else if kind == "unlock" {
				delete(held, recv)
				continue
			}
		case *ast.DeferStmt:
			// defer mu.Unlock() right after Lock: the lock is held for the
			// rest of the function — keep it marked held.
			continue
		}
		if len(held) == 0 {
			continue
		}
		for _, b := range blockingOps(pass, stmt) {
			locks := heldNames(held)
			out = append(out, Finding{
				Pos:  pass.Position(b.pos()),
				Rule: "lockdiscipline",
				Msg: fmt.Sprintf("%s while holding %s; shrink the critical section",
					b.what, locks),
			})
		}
	}
	return out
}

// lockCall classifies an expression as mu.Lock/RLock ("lock"),
// mu.Unlock/RUnlock ("unlock") or neither, returning the printed receiver.
func lockCall(e ast.Expr) (recv, kind string) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return types.ExprString(sel.X), "lock"
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), "unlock"
	}
	return "", ""
}

// blockingOp is one blocking operation found inside a lock window.
type blockingOp struct {
	node ast.Node
	what string
}

func (b blockingOp) pos() token.Pos { return b.node.Pos() }

// blockingOps finds channel sends/receives, WaitGroup.Wait calls and
// time.Sleep calls in a statement, without descending into function
// literals (those run later, not under the lock).
func blockingOps(pass *Pass, stmt ast.Stmt) []blockingOp {
	var out []blockingOp
	inspectShallow(stmt, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.SendStmt:
			out = append(out, blockingOp{v, "channel send"})
		case *ast.UnaryExpr:
			if v.Op.String() == "<-" {
				out = append(out, blockingOp{v, "channel receive"})
			}
		case *ast.CallExpr:
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if t := pass.TypeOf(sel.X); t != nil && containsWaitGroup(t) {
					out = append(out, blockingOp{v, "WaitGroup.Wait"})
				}
			}
			if isPkgFunc(pass, v, "time", "Sleep") {
				out = append(out, blockingOp{v, "time.Sleep"})
			}
		}
		return true
	})
	return out
}

// containsWaitGroup reports whether t is (a pointer to) sync.WaitGroup.
func containsWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// heldNames renders the held-lock set for a message.
func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for n := range held {
		names = append(names, n)
	}
	if len(names) == 1 {
		return names[0]
	}
	sort.Strings(names)
	return fmt.Sprintf("%v", names)
}

// --- mixed atomic + plain access ---

// atomicFuncNames are the sync/atomic package functions whose first
// argument addresses the word they operate on.
var atomicFuncNames = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true,
	"CompareAndSwapUint32": true, "CompareAndSwapUint64": true,
	"AddUintptr": true, "LoadUintptr": true, "StoreUintptr": true,
	"LoadPointer": true, "StorePointer": true,
}

// checkMixedAtomic flags struct fields that are both operated on through
// sync/atomic functions and written by plain assignment in the same
// package.
func checkMixedAtomic(pass *Pass) []Finding {
	atomicFields := map[types.Object]bool{}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			obj := calleeObject(pass, call)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" ||
				!atomicFuncNames[obj.Name()] {
				return true
			}
			if field := addressedField(pass, call.Args[0]); field != nil {
				atomicFields[field] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	var out []Finding
	flagWrite := func(sel ast.Expr) {
		field := selectedField(pass, sel)
		if field == nil || !atomicFields[field] {
			return
		}
		out = append(out, Finding{
			Pos:  pass.Position(sel.Pos()),
			Rule: "lockdiscipline",
			Msg: fmt.Sprintf("field %s is accessed via sync/atomic elsewhere; "+
				"this plain write forfeits atomicity", field.Name()),
		})
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					flagWrite(lhs)
				}
			case *ast.IncDecStmt:
				flagWrite(s.X)
			}
			return true
		})
	}
	return out
}

// addressedField resolves &x.f to the field object f, or nil.
func addressedField(pass *Pass, e ast.Expr) types.Object {
	unary, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || unary.Op.String() != "&" {
		return nil
	}
	return selectedField(pass, unary.X)
}

// selectedField resolves a selector expression to the struct field it
// names, or nil for non-selectors and non-fields.
func selectedField(pass *Pass, e ast.Expr) types.Object {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || pass.Pkg.Info == nil {
		return nil
	}
	s, ok := pass.Pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj()
}
