package analysis

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden corpus under testdata/corpus is a self-contained module
// ("fixture") with stub internal/telemetry, internal/faults and
// internal/units packages — isPkgFunc matches import paths by suffix, so
// the stubs stand in for the real packages — plus one firing and one quiet
// shape per analyzer. Expected findings are annotated in the fixtures as
//
//	// want <rule> "<message substring>"
//
// comments on the finding's line (repeatable for multiple findings on one
// line; block-comment form for lines that end in a line comment). The test
// fails on any finding without a marker and any marker without a finding.

// wantRE captures the marker clause; pairRE splits it into (rule, substr)
// expectations.
var (
	wantRE = regexp.MustCompile(`want((?:\s+[a-z]+\s+"[^"]*")+)`)
	pairRE = regexp.MustCompile(`([a-z]+)\s+"([^"]*)"`)
)

// wantMarker is one expected finding parsed from a fixture comment.
type wantMarker struct {
	rule   string
	substr string
	used   bool
}

// loadWantMarkers scans every fixture .go file for want markers, keyed by
// module-relative slash path and line.
func loadWantMarkers(t *testing.T, root string) map[string]map[int][]*wantMarker {
	t.Helper()
	out := map[string]map[int][]*wantMarker{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, pair := range pairRE.FindAllStringSubmatch(m[1], -1) {
				if out[rel] == nil {
					out[rel] = map[int][]*wantMarker{}
				}
				out[rel][i+1] = append(out[rel][i+1],
					&wantMarker{rule: pair[1], substr: pair[2]})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCorpusGolden runs the full analyzer set over the corpus module and
// matches every finding against the inline want markers, in both
// directions.
func TestCorpusGolden(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range m.Packages {
		for _, terr := range p.TypeErrors {
			t.Errorf("corpus %s: type error: %v", p.Dir, terr)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	cfg := DefaultConfig()
	got := RunAnalyzers(m, Analyzers(), &cfg)
	want := loadWantMarkers(t, root)

	rulesFired := map[string]bool{}
	for _, f := range got {
		rulesFired[f.Rule] = true
		matched := false
		for _, mk := range want[f.Pos.Filename][f.Pos.Line] {
			if !mk.used && mk.rule == f.Rule && strings.Contains(f.Msg, mk.substr) {
				mk.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for file, lines := range want {
		for line, marks := range lines {
			for _, mk := range marks {
				if !mk.used {
					t.Errorf("%s:%d: expected %s finding matching %q, got none",
						file, line, mk.rule, mk.substr)
				}
			}
		}
	}

	// Every analyzer must have a firing fixture, and the suppression
	// machinery must have produced its meta-findings.
	for _, name := range append(AnalyzerNames(), "igpulint") {
		if !rulesFired[name] {
			t.Errorf("no corpus fixture fires rule %q", name)
		}
	}
}
