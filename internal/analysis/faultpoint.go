package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
)

// faultPointAnalyzer enforces the fault-point contract between the
// production code and the chaos suite: every point name passed to
// faults.Register / faults.Fire / faults.FireData must be a compile-time
// string constant, every registered point must appear in the committed
// catalog (faults.Catalog), and the catalog must carry no orphans. A
// dynamic name would make a chaos schedule silently miss its target; an
// orphan catalog entry documents a failure mode that no longer exists. Both
// are invisible to the compiler because point names are just strings.
func faultPointAnalyzer() *Analyzer {
	return &Analyzer{
		Name:      "faultpoint",
		Doc:       "fault-point names are string constants declared in faults.Catalog; no dynamic names, no orphans",
		RunModule: runFaultPoint,
	}
}

func runFaultPoint(mp *ModulePass) []Finding {
	var out []Finding

	catalog, _, ok := loadFaultCatalog(mp)
	registered := map[string]token.Position{} // name -> first Register site
	fired := map[string]token.Position{}      // name -> first Fire site

	for _, pass := range mp.Passes() {
		// Package-level vars initialized from faults.Register double as
		// point identifiers at Fire sites; resolve them first.
		registerVars := map[types.Object]string{}
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				gd, isGen := decl.(*ast.GenDecl)
				if !isGen || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs := spec.(*ast.ValueSpec)
					for i, val := range vs.Values {
						call, isCall := val.(*ast.CallExpr)
						if !isCall || i >= len(vs.Names) {
							continue
						}
						if !isPkgFunc(pass, call, "internal/faults", "Register") {
							continue
						}
						if name, lit := constString(pass, call.Args[0]); lit {
							registerVars[pass.ObjectOf(vs.Names[i])] = name
						}
					}
				}
			}
		}

		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, isCall := n.(*ast.CallExpr)
				if !isCall || len(call.Args) == 0 {
					return true
				}
				switch {
				case isPkgFunc(pass, call, "internal/faults", "Register"):
					name, lit := constString(pass, call.Args[0])
					if !lit {
						out = append(out, Finding{
							Pos:  pass.Position(call.Args[0].Pos()),
							Rule: "faultpoint",
							Msg:  "fault-point name is not a compile-time string constant",
						})
						return true
					}
					if _, dup := registered[name]; dup {
						out = append(out, Finding{
							Pos:  pass.Position(call.Args[0].Pos()),
							Rule: "faultpoint",
							Msg:  fmt.Sprintf("fault point %q registered more than once", name),
						})
						return true
					}
					registered[name] = pass.Position(call.Args[0].Pos())
				case isPkgFunc(pass, call, "internal/faults", "Fire"),
					isPkgFunc(pass, call, "internal/faults", "FireData"):
					name, lit := constString(pass, call.Args[0])
					if !lit {
						if id, isIdent := ast.Unparen(call.Args[0]).(*ast.Ident); isIdent {
							if n, known := registerVars[pass.ObjectOf(id)]; known {
								name, lit = n, true
							}
						}
					}
					if !lit {
						out = append(out, Finding{
							Pos:  pass.Position(call.Args[0].Pos()),
							Rule: "faultpoint",
							Msg:  "fault-point name is dynamic; use a string constant or a faults.Register-initialized var",
						})
						return true
					}
					if _, seen := fired[name]; !seen {
						fired[name] = pass.Position(call.Args[0].Pos())
					}
				}
				return true
			})
		}
	}

	if !ok {
		out = append(out, Finding{
			Pos:  token.Position{Filename: "internal/faults"},
			Rule: "faultpoint",
			Msg:  "fault-point catalog (var Catalog = []string{...}) not found in the faults package",
		})
		return out
	}

	for name, pos := range registered {
		if _, inCat := catalog[name]; !inCat {
			out = append(out, Finding{Pos: pos, Rule: "faultpoint",
				Msg: fmt.Sprintf("fault point %q is not declared in faults.Catalog", name)})
		}
	}
	for name, pos := range fired {
		if _, isReg := registered[name]; !isReg {
			out = append(out, Finding{Pos: pos, Rule: "faultpoint",
				Msg: fmt.Sprintf("fault point %q is fired but never registered", name)})
		}
	}
	for name, pos := range catalog {
		if _, isReg := registered[name]; !isReg {
			out = append(out, Finding{Pos: pos, Rule: "faultpoint",
				Msg: fmt.Sprintf("catalog entry %q is an orphan: no faults.Register site declares it", name)})
		}
	}
	return out
}

// loadFaultCatalog reads the committed catalog — the package-level
// `var Catalog = []string{...}` in the faults package — returning each
// entry's position for orphan reporting.
func loadFaultCatalog(mp *ModulePass) (map[string]token.Position, token.Position, bool) {
	for _, pass := range mp.Passes() {
		if !hasPathSuffix(pass.Pkg.Path, "internal/faults") {
			continue
		}
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				gd, isGen := decl.(*ast.GenDecl)
				if !isGen || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs := spec.(*ast.ValueSpec)
					for i, name := range vs.Names {
						if name.Name != "Catalog" || i >= len(vs.Values) {
							continue
						}
						lit, isLit := vs.Values[i].(*ast.CompositeLit)
						if !isLit {
							continue
						}
						entries := map[string]token.Position{}
						for _, el := range lit.Elts {
							if s, isStr := stringLit(el); isStr {
								entries[s] = pass.Position(el.Pos())
							}
						}
						return entries, pass.Position(lit.Pos()), true
					}
				}
			}
		}
	}
	return nil, token.Position{}, false
}

// constString evaluates an expression to a compile-time string constant.
func constString(pass *Pass, e ast.Expr) (string, bool) {
	if pass.Pkg.Info == nil {
		return stringLit(e)
	}
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// stringLit unquotes a basic string literal.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
