package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// DocPackages is the default set of directories LintExportedDocs enforces:
// the packages whose exported surface other layers program against, so an
// undocumented identifier there is an API without a contract.
func DocPackages() []string {
	return []string{
		"internal/engine",
		"internal/perfmodel",
		"internal/telemetry",
		"internal/perfbench",
	}
}

// LintExportedDocs checks that every exported top-level identifier (func,
// method, type, const, var) in the given directories (relative to root,
// non-recursive) carries a doc comment. A doc comment on a grouped const/var
// declaration covers every name in the group. Findings use the "exporteddoc"
// rule.
func LintExportedDocs(root string, dirs []string) ([]Finding, error) {
	fset := token.NewFileSet()
	var out []Finding
	for _, dir := range dirs {
		full := filepath.Join(root, filepath.FromSlash(dir))
		entries, err := os.ReadDir(full)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(full, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: %w", err)
			}
			out = append(out, lintFileDocs(fset, f)...)
		}
	}
	sortFindings(out)
	return out, nil
}

// lintFileDocs applies the exporteddoc rule to one parsed file.
func lintFileDocs(fset *token.FileSet, f *ast.File) []Finding {
	var out []Finding
	flag := func(pos token.Pos, what, name string) {
		out = append(out, Finding{
			Pos:  fset.Position(pos),
			Rule: "exporteddoc",
			Msg:  fmt.Sprintf("exported %s %s has no doc comment", what, name),
		})
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			what := "function"
			if d.Recv != nil {
				what = "method"
			}
			flag(d.Pos(), what, d.Name.Name)
		case *ast.GenDecl:
			switch d.Tok {
			case token.TYPE:
				for _, spec := range d.Specs {
					ts := spec.(*ast.TypeSpec)
					if ts.Name.IsExported() && d.Doc == nil && ts.Doc == nil {
						flag(ts.Pos(), "type", ts.Name.Name)
					}
				}
			case token.CONST, token.VAR:
				what := "const"
				if d.Tok == token.VAR {
					what = "var"
				}
				for _, spec := range d.Specs {
					vs := spec.(*ast.ValueSpec)
					// A doc comment on the group covers its members.
					if d.Doc != nil || vs.Doc != nil || vs.Comment != nil {
						continue
					}
					for _, n := range vs.Names {
						if n.IsExported() {
							flag(n.Pos(), what, n.Name)
						}
					}
				}
			}
		}
	}
	return out
}

// mdLinkRE matches inline markdown links and images: [text](target) /
// ![alt](target). Targets with spaces or nested parentheses are out of scope
// — this repo's docs do not use them.
var mdLinkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^()\s]+)\)`)

// CheckMarkdownLinks verifies that every relative link target in the given
// markdown files (paths relative to root) resolves to an existing file or
// directory. Absolute URLs (with a scheme), mailto links and pure #fragment
// anchors are skipped; a #fragment suffix on a relative target is stripped
// before the existence check. Findings use the "mdlink" rule.
func CheckMarkdownLinks(root string, files []string) ([]Finding, error) {
	var out []Finding
	for _, rel := range files {
		full := filepath.Join(root, filepath.FromSlash(rel))
		data, err := os.ReadFile(full)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		lines := strings.Split(string(data), "\n")
		for i, line := range lines {
			for _, m := range mdLinkRE.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if skipLinkTarget(target) {
					continue
				}
				path := target
				if j := strings.IndexAny(path, "#?"); j >= 0 {
					path = path[:j]
				}
				if path == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(full), filepath.FromSlash(path))
				if _, err := os.Stat(resolved); err != nil {
					out = append(out, Finding{
						Pos:  token.Position{Filename: full, Line: i + 1, Column: strings.Index(line, m[0]) + 1},
						Rule: "mdlink",
						Msg:  fmt.Sprintf("relative link %q does not resolve", target),
					})
				}
			}
		}
	}
	sortFindings(out)
	return out, nil
}

// skipLinkTarget reports whether a link target is out of scope for the
// relative-link check (absolute URL, mailto, or in-page anchor).
func skipLinkTarget(target string) bool {
	if strings.HasPrefix(target, "#") {
		return true
	}
	u, err := url.Parse(target)
	return err == nil && u.Scheme != ""
}

// MarkdownFiles lists the documentation set the docs-links CI step checks:
// the top-level README/DESIGN/EXPERIMENTS/ROADMAP plus everything under
// docs/. Paths come back relative to root, sorted.
func MarkdownFiles(root string) ([]string, error) {
	var files []string
	for _, name := range []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"} {
		if _, err := os.Stat(filepath.Join(root, name)); err == nil {
			files = append(files, name)
		}
	}
	docs := filepath.Join(root, "docs")
	err := filepath.WalkDir(docs, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".md") {
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			files = append(files, filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	sort.Strings(files)
	return files, nil
}

// sortFindings orders findings by position, the same order Lint uses.
func sortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}
