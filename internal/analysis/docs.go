package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"unicode"
)

// DocPackages is the default set of directories LintExportedDocs enforces:
// the packages whose exported surface other layers program against, so an
// undocumented identifier there is an API without a contract.
func DocPackages() []string {
	return []string{
		"internal/advisord",
		"internal/advisord/client",
		"internal/chaos",
		"internal/engine",
		"internal/faults",
		"internal/fleet",
		"internal/perfbench",
		"internal/perfmodel",
		"internal/telemetry",
	}
}

// LintExportedDocs checks that every exported top-level identifier (func,
// method, type, const, var) in the given directories (relative to root,
// non-recursive) carries a doc comment. A doc comment on a grouped const/var
// declaration covers every name in the group. Findings use the "exporteddoc"
// rule.
func LintExportedDocs(root string, dirs []string) ([]Finding, error) {
	fset := token.NewFileSet()
	var out []Finding
	for _, dir := range dirs {
		full := filepath.Join(root, filepath.FromSlash(dir))
		entries, err := os.ReadDir(full)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(full, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: %w", err)
			}
			out = append(out, lintFileDocs(fset, f)...)
		}
	}
	sortFindings(out)
	return out, nil
}

// lintFileDocs applies the exporteddoc rule to one parsed file.
func lintFileDocs(fset *token.FileSet, f *ast.File) []Finding {
	var out []Finding
	flag := func(pos token.Pos, what, name string) {
		out = append(out, Finding{
			Pos:  fset.Position(pos),
			Rule: "exporteddoc",
			Msg:  fmt.Sprintf("exported %s %s has no doc comment", what, name),
		})
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			what := "function"
			if d.Recv != nil {
				what = "method"
			}
			flag(d.Pos(), what, d.Name.Name)
		case *ast.GenDecl:
			switch d.Tok {
			case token.TYPE:
				for _, spec := range d.Specs {
					ts := spec.(*ast.TypeSpec)
					if ts.Name.IsExported() && d.Doc == nil && ts.Doc == nil {
						flag(ts.Pos(), "type", ts.Name.Name)
					}
				}
			case token.CONST, token.VAR:
				what := "const"
				if d.Tok == token.VAR {
					what = "var"
				}
				for _, spec := range d.Specs {
					vs := spec.(*ast.ValueSpec)
					// A doc comment on the group covers its members.
					if d.Doc != nil || vs.Doc != nil || vs.Comment != nil {
						continue
					}
					for _, n := range vs.Names {
						if n.IsExported() {
							flag(n.Pos(), what, n.Name)
						}
					}
				}
			}
		}
	}
	return out
}

// mdLinkRE matches inline markdown links and images: [text](target) /
// ![alt](target). Targets with spaces or nested parentheses are out of scope
// — this repo's docs do not use them.
var mdLinkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^()\s]+)\)`)

// CheckMarkdownLinks verifies that every relative link target in the given
// markdown files (paths relative to root) resolves to an existing file or
// directory, and that every #fragment — in-page or on a relative .md target —
// names an actual heading's GitHub-style anchor in the linked file. Absolute
// URLs (with a scheme) and mailto links are skipped. Findings use the
// "mdlink" rule.
func CheckMarkdownLinks(root string, files []string) ([]Finding, error) {
	anchors := map[string]map[string]bool{} // file path -> heading slugs
	anchorsOf := func(path string) (map[string]bool, error) {
		if a, ok := anchors[path]; ok {
			return a, nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		a := headingAnchors(string(data))
		anchors[path] = a
		return a, nil
	}

	var out []Finding
	for _, rel := range files {
		full := filepath.Join(root, filepath.FromSlash(rel))
		data, err := os.ReadFile(full)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		lines := strings.Split(string(data), "\n")
		inFence := false
		for i, line := range lines {
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inFence = !inFence
				continue
			}
			if inFence {
				continue
			}
			for _, m := range mdLinkRE.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if skipLinkTarget(target) {
					continue
				}
				flag := func(format string, args ...any) {
					out = append(out, Finding{
						Pos:  token.Position{Filename: full, Line: i + 1, Column: strings.Index(line, m[0]) + 1},
						Rule: "mdlink",
						Msg:  fmt.Sprintf(format, args...),
					})
				}
				path, fragment := target, ""
				if j := strings.Index(path, "#"); j >= 0 {
					path, fragment = path[:j], path[j+1:]
				}
				if j := strings.Index(path, "?"); j >= 0 {
					path = path[:j]
				}
				resolved := full // in-page anchor
				if path != "" {
					resolved = filepath.Join(filepath.Dir(full), filepath.FromSlash(path))
					if _, err := os.Stat(resolved); err != nil {
						flag("relative link %q does not resolve", target)
						continue
					}
				}
				if fragment == "" {
					continue
				}
				if !strings.HasSuffix(resolved, ".md") {
					flag("link %q carries a #fragment, but %s is not a markdown file", target, path)
					continue
				}
				heads, err := anchorsOf(resolved)
				if err != nil {
					return nil, fmt.Errorf("analysis: %w", err)
				}
				if !heads[strings.ToLower(fragment)] {
					flag("anchor %q does not match any heading in %s", "#"+fragment, filepath.Base(resolved))
				}
			}
		}
	}
	sortFindings(out)
	return out, nil
}

// headingAnchors extracts the GitHub-style anchor slug of every ATX heading
// in a markdown document. Duplicate headings get -1, -2, ... suffixes, and
// headings inside fenced code blocks are ignored — both as GitHub renders
// them.
func headingAnchors(doc string) map[string]bool {
	out := map[string]bool{}
	seen := map[string]int{}
	inFence := false
	for _, line := range strings.Split(doc, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(trimmed, "#") {
			continue
		}
		text := strings.TrimLeft(trimmed, "#")
		if text == trimmed || (text != "" && text[0] != ' ' && text[0] != '\t') {
			continue // not an ATX heading ("#foo" or more than just hashes)
		}
		slug := headingSlug(strings.TrimSpace(text))
		if n := seen[slug]; n > 0 {
			out[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			out[slug] = true
		}
		seen[slug]++
	}
	return out
}

// headingSlug converts heading text to its GitHub anchor: lowercase, spaces
// to hyphens, everything except letters, digits, hyphens and underscores
// dropped (which also strips backticks and other markdown punctuation).
func headingSlug(text string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(text) {
		switch {
		case r == ' ':
			b.WriteByte('-')
		case r == '-' || r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') ||
			(r > 127 && (unicode.IsLetter(r) || unicode.IsDigit(r))):
			b.WriteRune(r)
		}
	}
	return b.String()
}

// skipLinkTarget reports whether a link target is out of scope for the
// relative-link check (absolute URL or mailto; in-page #anchors are checked).
func skipLinkTarget(target string) bool {
	if strings.HasPrefix(target, "#") {
		return false
	}
	u, err := url.Parse(target)
	return err == nil && u.Scheme != ""
}

// MarkdownFiles lists the documentation set the docs-links CI step checks:
// the top-level README/DESIGN/EXPERIMENTS/ROADMAP plus everything under
// docs/. Paths come back relative to root, sorted.
func MarkdownFiles(root string) ([]string, error) {
	var files []string
	for _, name := range []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"} {
		if _, err := os.Stat(filepath.Join(root, name)); err == nil {
			files = append(files, name)
		}
	}
	docs := filepath.Join(root, "docs")
	err := filepath.WalkDir(docs, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".md") {
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			files = append(files, filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	sort.Strings(files)
	return files, nil
}

// sortFindings orders findings by position, the same order Lint uses.
func sortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}
