// Package analysis is the repo's own Go-source gate: a stdlib-only
// (go/parser + go/types) static-analysis framework for the invariants the
// communication framework relies on but the compiler cannot see. The
// module is loaded and type-checked as a whole (LoadModule), then every
// registered Analyzer runs over each package (RunAnalyzers); type-check
// failures surface as "typecheck" pseudo-findings rather than aborting the
// run. Ten rules (see DESIGN.md §13 for the full catalog):
//
//   - rawaddr: no arithmetic directly on a buffer's .Addr field outside
//     the memory-system packages — everything else indexes through Layout
//     accessors so placements stay opaque and verifiable.
//
//   - unitsmix: no naked + or - across unit domains (latency, bytes,
//     cycles, frequency, bandwidth). Operands are classified first by
//     their declared types in internal/units, falling back to the name
//     heuristic for untyped code; conversion must go through an explicit
//     rate (division), which the rule leaves alone.
//
//   - validatewrap: every error built inside an exported Validate method
//     must carry the package's name as its prefix ("mmu: ...") so a
//     failure surfaced three layers up still names its origin.
//
//   - ctxflow: exported functions in the engine/framework stack
//     (CtxPackages) accept context.Context first; no manufactured
//     context.Background()/TODO() roots under CtxBackgroundBanned.
//
//   - spanend: every telemetry.Start span is ended on all paths, and the
//     returned context is not discarded.
//
//   - faultpoint: faults.Register/Fire names are compile-time constants
//     declared in faults.Catalog, registered exactly once, and every
//     registration is fired somewhere.
//
//   - lockdiscipline: no lock-bearing values copied through parameters,
//     receivers or range variables; no blocking operations under a held
//     mutex in LockPackages; no mixed atomic/plain access to one field.
//
//   - allochot: no per-iteration allocations (fmt formatting, append
//     without preallocation, interface boxing, closure capture) in loops
//     inside HotPackages or under an //igpu:hot marker.
//
//   - metricname: Prometheus metric names are compile-time constants in
//     the MetricPrefix namespace, lower_snake_case, ending in a
//     recognized unit, and registered exactly once.
//
//   - timesource: no direct wall-clock reads (time.Now, time.Sleep,
//     time.After, timers, tickers) in the packages that run under the
//     deterministic simulation harness (TimePackages); time flows only
//     through the threaded Clock.
//
// Findings can be suppressed inline with
// `//igpulint:ignore <rule> <justification>` (the justification is
// mandatory; unused or bare directives are themselves findings) or
// accepted into a committed baseline (baseline.go) that cmd/igpulint
// ratchets in both directions — new findings and stale entries both fail.
//
// Two documentation rules ride alongside (docs.go), run by `hazardcheck
// -lint-docs` and `hazardcheck -links`:
//
//   - exporteddoc: exported identifiers in the contract packages
//     (DocPackages) must carry doc comments.
//
//   - mdlink: relative links (including #anchors) in the markdown
//     documentation set (MarkdownFiles) must resolve.
//
// The gate runs as `go run ./cmd/igpulint ./...` (make lint) and in CI;
// `hazardcheck -lint ./...` is a thin alias over the same analyzer set
// without the baseline comparison. The analyzers are themselves tested
// against a golden fixture corpus under testdata/corpus (corpus_test.go).
// Lint below is the legacy syntactic entry point, kept for callers that
// need a parse-only pass without type information.
package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos  token.Position
	Rule string // an analyzer name (AnalyzerNames), "typecheck", "exporteddoc", "mdlink" or "igpulint"
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// Config tunes the gate. The zero value disables every scoped rule; use
// DefaultConfig for the repository's committed policy.
type Config struct {
	// RawAddrAllowed lists slash-separated directory prefixes (relative to
	// the lint root) whose packages may do raw .Addr arithmetic.
	RawAddrAllowed []string

	// CtxPackages lists the directories whose exported functions must
	// accept and thread context.Context (the ctxflow rule).
	CtxPackages []string

	// CtxBackgroundBanned lists the directory prefixes where
	// context.Background()/context.TODO() are forbidden — library code
	// must thread the caller's context, never manufacture a root.
	CtxBackgroundBanned []string

	// LockPackages lists the directory prefixes where lockdiscipline
	// additionally forbids blocking operations (channel send/receive,
	// WaitGroup.Wait, time.Sleep) while a mutex is held.
	LockPackages []string

	// HotPackages lists the directory prefixes whose every function is
	// treated as hot by allochot; elsewhere only functions carrying an
	// //igpu:hot marker are checked.
	HotPackages []string

	// TimePackages lists the directory prefixes that run under the
	// deterministic simulation harness and therefore must never read the
	// wall clock directly (the timesource rule): time flows only through
	// the threaded Clock.
	TimePackages []string

	// MetricPrefix is the required Prometheus metric-name prefix.
	MetricPrefix string

	// MetricUnits lists the unit suffixes a metric name may end with
	// (matched as "_<unit>"; "total" covers counters).
	MetricUnits []string
}

// DefaultConfig is the repository's committed lint policy: raw addressing
// only in the memory system and substrate simulators (the packages that ARE
// the address space); context threading in the engine/framework/microbench/
// profile/comm stack; no manufactured root contexts anywhere under
// internal/; lock-scope discipline in the concurrent service packages; the
// igpucomm_ Prometheus namespace.
func DefaultConfig() Config {
	return Config{
		RawAddrAllowed: []string{
			"internal/cache",
			"internal/coherence",
			"internal/comm",
			"internal/cpu",
			"internal/gpu",
			"internal/hazard",
			"internal/isa",
			"internal/memdev",
			"internal/mmu",
			"internal/soc",
			"internal/tiling",
		},
		CtxPackages: []string{
			"internal/engine",
			"internal/framework",
			"internal/microbench",
			"internal/profile",
			"internal/comm",
		},
		CtxBackgroundBanned: []string{"internal"},
		LockPackages: []string{
			"internal/engine",
			"internal/faults",
			"internal/fleet",
			"internal/telemetry",
			"internal/advisord",
		},
		HotPackages: []string{
			"internal/cache",
			"internal/gpu",
			"internal/coherence",
		},
		TimePackages: []string{
			"internal/engine",
			"internal/advisord",
			"internal/fleet",
		},
		MetricPrefix: "igpucomm_",
		MetricUnits: []string{
			"total", "seconds", "bytes", "ratio", "info", "state",
			"utilization", "in_flight", "in_use", "workers", "entries",
			"size",
		},
	}
}

// Lint walks root for non-test .go files (skipping .git, vendor and
// testdata) and applies the three rules. Findings come back sorted by
// position.
func Lint(root string, cfg Config) ([]Finding, error) {
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "vendor", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(files)

	fset := token.NewFileSet()
	var out []Finding
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		dir := filepath.ToSlash(rel)
		out = append(out, lintFile(fset, f, dir, cfg)...)
	}
	sortFindings(out)
	return out, nil
}

func lintFile(fset *token.FileSet, f *ast.File, dir string, cfg Config) []Finding {
	var out []Finding
	rawAllowed := false
	for _, p := range cfg.RawAddrAllowed {
		if dir == p || strings.HasPrefix(dir, p+"/") {
			rawAllowed = true
			break
		}
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.BinaryExpr:
			if !rawAllowed {
				out = append(out, checkRawAddr(fset, node)...)
			}
			out = append(out, checkUnitsMix(fset, node)...)
		case *ast.FuncDecl:
			if node.Name.Name == "Validate" && node.Recv != nil {
				out = append(out, checkValidateWrap(fset, node, f.Name.Name)...)
			}
		}
		return true
	})
	return out
}

// rawAddrAnalyzer adapts the syntactic rawaddr rule to the analyzer
// framework: raw .Addr arithmetic is allowed only in the memory system.
func rawAddrAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "rawaddr",
		Doc:  "no raw buffer-address arithmetic outside the memory system; index through Layout accessors",
		Run: func(pass *Pass) []Finding {
			if inDirs(pass.Pkg.Dir, pass.Config.RawAddrAllowed) {
				return nil
			}
			var out []Finding
			for _, f := range pass.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if b, ok := n.(*ast.BinaryExpr); ok {
						out = append(out, checkRawAddr(pass.Fset, b)...)
					}
					return true
				})
			}
			return out
		},
	}
}

// validateWrapAnalyzer adapts the syntactic validatewrap rule: every error
// built inside an exported Validate method must carry the package prefix.
func validateWrapAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "validatewrap",
		Doc:  "errors built inside Validate methods must be prefixed with the package name",
		Run: func(pass *Pass) []Finding {
			var out []Finding
			for _, f := range pass.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if fn, ok := n.(*ast.FuncDecl); ok && fn.Name.Name == "Validate" && fn.Recv != nil {
						out = append(out, checkValidateWrap(pass.Fset, fn, f.Name.Name)...)
					}
					return true
				})
			}
			return out
		},
	}
}

// --- rule: rawaddr ---

var arithmeticOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true,
	token.QUO: true, token.REM: true,
}

// checkRawAddr flags a .Addr field selection used as an operand of
// arithmetic. Method calls like lay.Addr("frame") are CallExprs, not bare
// selectors, so the Layout accessor never trips the rule.
func checkRawAddr(fset *token.FileSet, b *ast.BinaryExpr) []Finding {
	if !arithmeticOps[b.Op] {
		return nil
	}
	var out []Finding
	for _, e := range []ast.Expr{b.X, b.Y} {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Addr" {
			continue
		}
		out = append(out, Finding{
			Pos:  fset.Position(sel.Pos()),
			Rule: "rawaddr",
			Msg: "raw arithmetic on a buffer's .Addr outside the memory system; " +
				"index through Layout accessors instead",
		})
	}
	return out
}

// --- rule: unitsmix ---

// unitClass classifies an expression by the unit its name advertises:
// "latency" for durations, "bytes" for sizes and counts of bytes, "" when
// the name says nothing either way.
func unitClass(e ast.Expr) string {
	var name string
	switch v := e.(type) {
	case *ast.Ident:
		name = v.Name
	case *ast.SelectorExpr:
		name = v.Sel.Name
	case *ast.CallExpr:
		if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
			name = sel.Sel.Name
		}
	case *ast.ParenExpr:
		return unitClass(v.X)
	default:
		return ""
	}
	lower := strings.ToLower(name)
	latency := strings.Contains(lower, "latency") ||
		strings.Contains(lower, "elapsed") ||
		strings.HasSuffix(lower, "time")
	bytes := strings.Contains(lower, "bytes") || strings.HasSuffix(lower, "size")
	if latency == bytes { // neither, or a name claiming both
		return ""
	}
	if latency {
		return "latency"
	}
	return "bytes"
}

// checkUnitsMix flags x+y / x-y where one side is latency-named and the
// other bytes-named: a units error regardless of the Go types. Conversion
// between the two domains must go through a rate (division), which the rule
// deliberately leaves alone.
func checkUnitsMix(fset *token.FileSet, b *ast.BinaryExpr) []Finding {
	if b.Op != token.ADD && b.Op != token.SUB {
		return nil
	}
	cx, cy := unitClass(b.X), unitClass(b.Y)
	if cx == "" || cy == "" || cx == cy {
		return nil
	}
	return []Finding{{
		Pos:  fset.Position(b.Pos()),
		Rule: "unitsmix",
		Msg: fmt.Sprintf("adding %s to %s; convert through an explicit rate instead",
			cx, cy),
	}}
}

// --- rule: validatewrap ---

// checkValidateWrap requires every error literal built inside an exported
// Validate method to open with the package's name ("mmu: ...", "cache %s:
// ..."), so failures name their origin wherever they surface.
func checkValidateWrap(fset *token.FileSet, fn *ast.FuncDecl, pkg string) []Finding {
	var out []Finding
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		isErrf := recv.Name == "fmt" && sel.Sel.Name == "Errorf"
		isNew := recv.Name == "errors" && sel.Sel.Name == "New"
		if (!isErrf && !isNew) || len(call.Args) == 0 {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		text, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		if !strings.HasPrefix(text, pkg+":") && !strings.HasPrefix(text, pkg+" ") {
			out = append(out, Finding{
				Pos:  fset.Position(lit.Pos()),
				Rule: "validatewrap",
				Msg: fmt.Sprintf("Validate error %q must be prefixed with the package name %q",
					text, pkg),
			})
		}
		return true
	})
	return out
}
