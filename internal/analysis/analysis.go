// Package analysis is the repo's own Go-source gate: a small, stdlib-only
// (go/parser + go/ast) analyzer for the invariants the communication
// framework relies on but the compiler cannot see. Three rules:
//
//   - rawaddr: arithmetic directly on a buffer's .Addr field is raw buffer
//     indexing; only the memory system itself (internal/mmu, internal/comm,
//     internal/tiling and the other core substrate packages) may do it.
//     Application, command and example code must go through Layout
//     accessors so placements stay opaque and verifiable.
//
//   - unitsmix: adding or subtracting a latency-like quantity and a
//     byte-count-like quantity in one expression is a units error no matter
//     what the Go types say (both are often int64/float64 underneath).
//     Conversions must go through an explicit rate (divide by bandwidth),
//     never naked + or -.
//
//   - validatewrap: every error built inside an exported Validate method
//     must carry the package's name as its prefix ("mmu: ...", "cache ...")
//     so a failure surfaced three layers up still names its origin.
//
// Two documentation rules ride alongside (docs.go), run by `hazardcheck
// -lint-docs` and `hazardcheck -links`:
//
//   - exporteddoc: exported identifiers in the contract packages
//     (DocPackages) must carry doc comments.
//
//   - mdlink: relative links in the markdown documentation set
//     (MarkdownFiles) must resolve.
//
// The analyzer is syntactic by design — no type checking — so the rules are
// conservative heuristics tuned to this repository. It runs as
// `go run ./cmd/hazardcheck -lint ./...` and in CI.
package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos  token.Position
	Rule string // "rawaddr", "unitsmix" or "validatewrap"
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// Config tunes the gate.
type Config struct {
	// RawAddrAllowed lists slash-separated directory prefixes (relative to
	// the lint root) whose packages may do raw .Addr arithmetic.
	RawAddrAllowed []string
}

// DefaultConfig allows raw addressing in the memory system and the
// substrate simulators — the packages that ARE the address space — and
// nowhere else (apps, cmds, examples, the facade).
func DefaultConfig() Config {
	return Config{
		RawAddrAllowed: []string{
			"internal/cache",
			"internal/coherence",
			"internal/comm",
			"internal/cpu",
			"internal/gpu",
			"internal/hazard",
			"internal/isa",
			"internal/memdev",
			"internal/mmu",
			"internal/soc",
			"internal/tiling",
		},
	}
}

// Lint walks root for non-test .go files (skipping .git, vendor and
// testdata) and applies the three rules. Findings come back sorted by
// position.
func Lint(root string, cfg Config) ([]Finding, error) {
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "vendor", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(files)

	fset := token.NewFileSet()
	var out []Finding
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		dir := filepath.ToSlash(rel)
		out = append(out, lintFile(fset, f, dir, cfg)...)
	}
	sortFindings(out)
	return out, nil
}

func lintFile(fset *token.FileSet, f *ast.File, dir string, cfg Config) []Finding {
	var out []Finding
	rawAllowed := false
	for _, p := range cfg.RawAddrAllowed {
		if dir == p || strings.HasPrefix(dir, p+"/") {
			rawAllowed = true
			break
		}
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.BinaryExpr:
			if !rawAllowed {
				out = append(out, checkRawAddr(fset, node)...)
			}
			out = append(out, checkUnitsMix(fset, node)...)
		case *ast.FuncDecl:
			if node.Name.Name == "Validate" && node.Recv != nil {
				out = append(out, checkValidateWrap(fset, node, f.Name.Name)...)
			}
		}
		return true
	})
	return out
}

// --- rule: rawaddr ---

var arithmeticOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true,
	token.QUO: true, token.REM: true,
}

// checkRawAddr flags a .Addr field selection used as an operand of
// arithmetic. Method calls like lay.Addr("frame") are CallExprs, not bare
// selectors, so the Layout accessor never trips the rule.
func checkRawAddr(fset *token.FileSet, b *ast.BinaryExpr) []Finding {
	if !arithmeticOps[b.Op] {
		return nil
	}
	var out []Finding
	for _, e := range []ast.Expr{b.X, b.Y} {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Addr" {
			continue
		}
		out = append(out, Finding{
			Pos:  fset.Position(sel.Pos()),
			Rule: "rawaddr",
			Msg: "raw arithmetic on a buffer's .Addr outside the memory system; " +
				"index through Layout accessors instead",
		})
	}
	return out
}

// --- rule: unitsmix ---

// unitClass classifies an expression by the unit its name advertises:
// "latency" for durations, "bytes" for sizes and counts of bytes, "" when
// the name says nothing either way.
func unitClass(e ast.Expr) string {
	var name string
	switch v := e.(type) {
	case *ast.Ident:
		name = v.Name
	case *ast.SelectorExpr:
		name = v.Sel.Name
	case *ast.CallExpr:
		if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
			name = sel.Sel.Name
		}
	case *ast.ParenExpr:
		return unitClass(v.X)
	default:
		return ""
	}
	lower := strings.ToLower(name)
	latency := strings.Contains(lower, "latency") ||
		strings.Contains(lower, "elapsed") ||
		strings.HasSuffix(lower, "time")
	bytes := strings.Contains(lower, "bytes") || strings.HasSuffix(lower, "size")
	if latency == bytes { // neither, or a name claiming both
		return ""
	}
	if latency {
		return "latency"
	}
	return "bytes"
}

// checkUnitsMix flags x+y / x-y where one side is latency-named and the
// other bytes-named: a units error regardless of the Go types. Conversion
// between the two domains must go through a rate (division), which the rule
// deliberately leaves alone.
func checkUnitsMix(fset *token.FileSet, b *ast.BinaryExpr) []Finding {
	if b.Op != token.ADD && b.Op != token.SUB {
		return nil
	}
	cx, cy := unitClass(b.X), unitClass(b.Y)
	if cx == "" || cy == "" || cx == cy {
		return nil
	}
	return []Finding{{
		Pos:  fset.Position(b.Pos()),
		Rule: "unitsmix",
		Msg: fmt.Sprintf("adding %s to %s; convert through an explicit rate instead",
			cx, cy),
	}}
}

// --- rule: validatewrap ---

// checkValidateWrap requires every error literal built inside an exported
// Validate method to open with the package's name ("mmu: ...", "cache %s:
// ..."), so failures name their origin wherever they surface.
func checkValidateWrap(fset *token.FileSet, fn *ast.FuncDecl, pkg string) []Finding {
	var out []Finding
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		isErrf := recv.Name == "fmt" && sel.Sel.Name == "Errorf"
		isNew := recv.Name == "errors" && sel.Sel.Name == "New"
		if (!isErrf && !isNew) || len(call.Args) == 0 {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		text, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		if !strings.HasPrefix(text, pkg+":") && !strings.HasPrefix(text, pkg+" ") {
			out = append(out, Finding{
				Pos:  fset.Position(lit.Pos()),
				Rule: "validatewrap",
				Msg: fmt.Sprintf("Validate error %q must be prefixed with the package name %q",
					text, pkg),
			})
		}
		return true
	})
	return out
}
