package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// registryMethods are the telemetry.Registry registration entry points and
// the index of their name argument.
var registryMethods = map[string]bool{
	"Counter": true, "CounterFunc": true, "CounterVec": true, "CounterVecFunc": true,
	"Gauge": true, "GaugeFunc": true, "InfoGauge": true,
	"Histogram": true, "HistogramVec": true,
}

// metricSegmentsRE holds metric names to lower_snake_case segments after
// the prefix.
var metricSegmentsRE = regexp.MustCompile(`^[a-z0-9]+(_[a-z0-9]+)+$`)

// metricNameAnalyzer enforces the Prometheus naming contract: every metric
// registered on a telemetry.Registry is named
// <prefix><subsystem>_<name>_<unit|total>, is a compile-time constant, and
// is registered at exactly one site in the tree. The telemetry registry
// only catches duplicate names at runtime (a panic on the boot path that
// registers second); dashboards and alerts depend on the naming scheme
// statically, which no runtime check sees at all.
func metricNameAnalyzer() *Analyzer {
	return &Analyzer{
		Name:      "metricname",
		Doc:       "Prometheus metric names match <prefix><subsystem>_<name>_<unit|total>, are constants, and are registered exactly once",
		RunModule: runMetricName,
	}
}

func runMetricName(mp *ModulePass) []Finding {
	var out []Finding
	sites := map[string][]token.Position{} // metric name -> registration sites
	for _, pass := range mp.Passes() {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				obj := calleeObject(pass, call)
				if obj == nil || obj.Pkg() == nil || !registryMethods[obj.Name()] ||
					!hasPathSuffix(obj.Pkg().Path(), "internal/telemetry") {
					return true
				}
				if !isRegistryMethod(obj) {
					// Same package, same method names, different contract:
					// Tracer.Counter records a Chrome trace counter sample,
					// not a Prometheus registration.
					return true
				}
				name, constant := constString(pass, call.Args[0])
				if !constant {
					out = append(out, Finding{
						Pos:  pass.Position(call.Args[0].Pos()),
						Rule: "metricname",
						Msg:  "metric name is not a compile-time constant; dashboards cannot be audited statically",
					})
					return true
				}
				sites[name] = append(sites[name], pass.Position(call.Args[0].Pos()))
				out = append(out, checkMetricName(mp.Config, name, pass.Position(call.Args[0].Pos()))...)
				return true
			})
		}
	}
	for name, where := range sites {
		if len(where) < 2 {
			continue
		}
		for _, pos := range where[1:] {
			out = append(out, Finding{Pos: pos, Rule: "metricname",
				Msg: fmt.Sprintf("metric %q is registered at %d sites; register exactly once", name, len(where))})
		}
	}
	return out
}

// isRegistryMethod reports whether obj is a method whose receiver is the
// telemetry Registry (possibly behind a pointer). Other telemetry types —
// the trace Tracer in particular — reuse the method names without
// registering anything.
func isRegistryMethod(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}

// checkMetricName validates one constant metric name against the naming
// scheme.
func checkMetricName(cfg *Config, name string, pos token.Position) []Finding {
	bad := func(msg string) []Finding {
		return []Finding{{Pos: pos, Rule: "metricname",
			Msg: fmt.Sprintf("metric %q %s", name, msg)}}
	}
	rest, ok := strings.CutPrefix(name, cfg.MetricPrefix)
	if !ok {
		return bad(fmt.Sprintf("does not start with the %q namespace", cfg.MetricPrefix))
	}
	if !metricSegmentsRE.MatchString(rest) {
		return bad("is not <subsystem>_<name>_<unit|total> in lower_snake_case")
	}
	for _, u := range cfg.MetricUnits {
		if strings.HasSuffix(rest, "_"+u) {
			return nil
		}
	}
	return bad(fmt.Sprintf("does not end in a recognized unit (one of %s)",
		strings.Join(cfg.MetricUnits, ", ")))
}
