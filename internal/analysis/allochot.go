package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// hotMarker is the comment directive that puts a single function under the
// allochot rule wherever it lives: //igpu:hot on the function's doc.
const hotMarker = "//igpu:hot"

// allocHotAnalyzer polices the simulate hot path for per-iteration
// allocations — the CUTHERMO observation at source level: per-site
// inefficiencies beat aggregate counters. Inside the loops of a hot
// function (one marked //igpu:hot, or any function in a HotPackages
// package) it flags the four allocation shapes that dominate this repo's
// profiles: fmt.Sprint* calls, values boxed into interface arguments,
// append onto a slice declared without capacity, and closures capturing
// outer variables (one heap-allocated closure per iteration).
func allocHotAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "allochot",
		Doc:  "no fmt.Sprint*, interface boxing, un-preallocated append, or capturing closures in loops of //igpu:hot functions and hot packages",
		Run: func(pass *Pass) []Finding {
			hotPkg := inDirs(pass.Pkg.Dir, pass.Config.HotPackages)
			var out []Finding
			for _, f := range pass.Pkg.Files {
				for _, decl := range f.Decls {
					fn, ok := decl.(*ast.FuncDecl)
					if !ok || fn.Body == nil {
						continue
					}
					if !hotPkg && !isHotMarked(fn) {
						continue
					}
					out = append(out, checkHotFunc(pass, fn)...)
				}
			}
			return out
		},
	}
}

// isHotMarked reports whether the function's doc comment carries the
// //igpu:hot marker.
func isHotMarked(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, hotMarker) {
			return true
		}
	}
	return false
}

// checkHotFunc applies the four allocation checks to every loop body in one
// hot function.
func checkHotFunc(pass *Pass, fn *ast.FuncDecl) []Finding {
	// Map locally-declared slice variables to whether their declaration
	// reserves capacity, for the append check.
	preallocated := map[types.Object]bool{}
	declared := map[types.Object]bool{}
	inspectShallow(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok.String() != ":=" {
				return true
			}
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(s.Rhs) {
					continue
				}
				obj := pass.ObjectOf(id)
				if obj == nil {
					continue
				}
				declared[obj] = true
				preallocated[obj] = reservesCapacity(s.Rhs[i])
			}
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for i, name := range vs.Names {
							obj := pass.ObjectOf(name)
							if obj == nil {
								continue
							}
							declared[obj] = true
							if i < len(vs.Values) {
								preallocated[obj] = reservesCapacity(vs.Values[i])
							}
						}
					}
				}
			}
		}
		return true
	})

	var out []Finding
	report := func(n ast.Node, msg string) {
		out = append(out, Finding{Pos: pass.Position(n.Pos()), Rule: "allochot",
			Msg: fmt.Sprintf("%s in loop of hot function %s", msg, fn.Name.Name)})
	}
	inspectShallow(fn.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		checkLoopBody(pass, body, declared, preallocated, report)
		// checkLoopBody already descended into nested loops; stop here so
		// an inner loop's statements are not reported once per ancestor.
		return false
	})
	return out
}

// reservesCapacity reports whether a slice initializer reserves room:
// make with an explicit capacity (or non-zero length), or a non-empty
// composite literal. `var s []T`, `s := []T{}` and 0-length makes do not.
func reservesCapacity(e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "make" {
			if len(v.Args) >= 3 {
				return true
			}
			if len(v.Args) == 2 {
				// make([]T, n): n zero-valued elements is still room.
				if lit, isLit := v.Args[1].(*ast.BasicLit); !isLit || lit.Value != "0" {
					return true
				}
			}
			return false
		}
		// A function call result: assume the callee sized it.
		return true
	case *ast.CompositeLit:
		return len(v.Elts) > 0
	}
	// Copies, conversions, selectors: not locally decidable; stay quiet.
	return true
}

// checkLoopBody flags the allocation shapes inside one loop body. Nested
// function literals are handled by the closure check, not descended into.
func checkLoopBody(pass *Pass, body *ast.BlockStmt, declared, preallocated map[types.Object]bool,
	report func(ast.Node, string)) {
	inspectShallow(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			if capt := closureCaptures(pass, v); len(capt) > 0 {
				report(v, fmt.Sprintf("closure capturing %s allocates per iteration",
					strings.Join(capt, ", ")))
			}
			return true // inspectShallow stops the descent
		case *ast.CallExpr:
			checkLoopCall(pass, v, report)
		case *ast.AssignStmt:
			checkLoopAppend(pass, v, declared, preallocated, report)
		}
		return true
	})
}

// checkLoopCall flags fmt.Sprint* calls and arguments boxed into interface
// parameters.
func checkLoopCall(pass *Pass, call *ast.CallExpr, report func(ast.Node, string)) {
	obj := calleeObject(pass, call)
	if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		switch obj.Name() {
		case "Sprintf", "Sprint", "Sprintln", "Appendf":
			report(call, "fmt."+obj.Name()+" allocates")
		}
		// Other fmt calls (Errorf and friends) sit on error paths, which
		// are cold even inside a hot loop — and the Sprint* finding above
		// already covers the call, so never double-report its ...any
		// boxing argument by argument.
		return
	}
	sig := calleeSignature(pass, call)
	if sig == nil {
		// Explicit conversion to an interface type boxes.
		if tv, ok := pass.Pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
			if types.IsInterface(tv.Type) && concreteValue(pass, call.Args[0]) {
				report(call, "conversion to interface boxes its operand")
			}
		}
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passing a slice through, no boxing
			}
			slice, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			param = slice.Elem()
		case i < params.Len():
			param = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(param) && concreteValue(pass, arg) {
			report(arg, fmt.Sprintf("argument %s boxes into interface parameter",
				types.ExprString(arg)))
		}
	}
}

// closureCaptures lists the outer local variables a function literal
// captures (package-level objects and its own locals/params excluded),
// sorted and deduplicated.
func closureCaptures(pass *Pass, lit *ast.FuncLit) []string {
	if pass.Pkg.Info == nil {
		return nil
	}
	inLit := func(obj types.Object) bool {
		return obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()
	}
	seen := map[string]bool{}
	var out []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, isVar := pass.Pkg.Info.Uses[id].(*types.Var)
		if !isVar || obj.IsField() || inLit(obj) {
			return true
		}
		// Package-level vars are not captured per iteration.
		if obj.Parent() != nil && obj.Pkg() != nil &&
			obj.Parent() == obj.Pkg().Scope() {
			return true
		}
		if !seen[obj.Name()] {
			seen[obj.Name()] = true
			out = append(out, obj.Name())
		}
		return true
	})
	sort.Strings(out)
	return out
}

// concreteValue reports whether an expression has a concrete (non-interface,
// non-nil, non-function-literal) type — the shapes that heap-box when
// converted to an interface.
func concreteValue(pass *Pass, e ast.Expr) bool {
	if _, isLit := ast.Unparen(e).(*ast.FuncLit); isLit {
		return false
	}
	t := pass.TypeOf(e)
	if t == nil || types.IsInterface(t) {
		return false
	}
	if basic, ok := t.Underlying().(*types.Basic); ok && basic.Kind() == types.UntypedNil {
		return false
	}
	// Pointers box without copying the pointee; still an allocation of the
	// interface header on escape, but the dominant cost is value boxing —
	// keep pointers quiet to hold the signal-to-noise ratio.
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return false
	}
	return true
}

// checkLoopAppend flags x = append(x, ...) where x was declared in this
// function without reserved capacity.
func checkLoopAppend(pass *Pass, assign *ast.AssignStmt, declared, preallocated map[types.Object]bool,
	report func(ast.Node, string)) {
	for i, rhs := range assign.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || i >= len(assign.Lhs) {
			continue
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "append" || len(call.Args) == 0 {
			continue
		}
		dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.ObjectOf(dst)
		if obj == nil || !declared[obj] || preallocated[obj] {
			continue
		}
		report(assign, fmt.Sprintf("append to %s grows without preallocation; "+
			"size it with make(..., 0, n) before the loop", dst.Name))
	}
}
