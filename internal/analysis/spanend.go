package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// spanEndAnalyzer enforces the span lifecycle: every span opened with
// telemetry.Start must be closed by a dominated End in the same function —
// normally `defer span.End()`. A span that is discarded, never ended, or
// ended only on some paths leaves an open interval in every trace export
// and skews the duration of its whole subtree; the compiler sees nothing
// wrong because End is an ordinary method call.
func spanEndAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "spanend",
		Doc:  "every telemetry.Start is paired with a dominated End (normally defer span.End())",
		Run: func(pass *Pass) []Finding {
			var out []Finding
			for _, f := range pass.Pkg.Files {
				for _, scope := range funcScopes(f) {
					out = append(out, checkSpanEnds(pass, scope)...)
				}
			}
			return out
		},
	}
}

// spanStart is one telemetry.Start assignment inside a scope.
type spanStart struct {
	pos  token.Pos
	name string
	obj  types.Object // nil when the span is discarded with _
}

// checkSpanEnds verifies every span started in one function scope.
func checkSpanEnds(pass *Pass, scope funcScope) []Finding {
	var starts []spanStart
	inspectShallow(scope.body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) != 2 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok || !isPkgFunc(pass, call, "internal/telemetry", "Start") {
			return true
		}
		ident, ok := assign.Lhs[1].(*ast.Ident)
		if !ok {
			return true
		}
		s := spanStart{pos: call.Pos(), name: ident.Name}
		if ident.Name != "_" {
			s.obj = pass.ObjectOf(ident)
		}
		starts = append(starts, s)
		return true
	})

	var out []Finding
	for _, s := range starts {
		if s.obj == nil {
			out = append(out, Finding{
				Pos:  pass.Position(s.pos),
				Rule: "spanend",
				Msg:  "span from telemetry.Start is discarded; it can never be ended",
			})
			continue
		}
		deferred, endPositions := findSpanEnds(pass, scope.body, s.obj)
		switch {
		case deferred:
			// A deferred End dominates every exit.
		case len(endPositions) == 0:
			out = append(out, Finding{
				Pos:  pass.Position(s.pos),
				Rule: "spanend",
				Msg:  fmt.Sprintf("span %s is never ended; defer %s.End() after Start", s.name, s.name),
			})
		case returnBetween(scope.body, s.pos, maxPos(endPositions)):
			out = append(out, Finding{
				Pos:  pass.Position(s.pos),
				Rule: "spanend",
				Msg: fmt.Sprintf("span %s.End() does not dominate every return; "+
					"defer it immediately after Start", s.name),
			})
		}
	}
	return out
}

// findSpanEnds locates End() calls on the span object within the scope:
// whether any is deferred (directly or inside a deferred closure), and the
// positions of the plain calls. Nested closures are searched too — ending a
// parent's span from a deferred literal is a legitimate pattern.
func findSpanEnds(pass *Pass, body *ast.BlockStmt, span types.Object) (deferred bool, plain []token.Pos) {
	isEndCall := func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "End" {
			return false
		}
		id, ok := sel.X.(*ast.Ident)
		return ok && pass.ObjectOf(id) == span
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.DeferStmt:
			if isEndCall(stmt.Call) {
				deferred = true
				return false
			}
			if lit, ok := stmt.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if isEndCall(m) {
						deferred = true
						return false
					}
					return true
				})
				return false
			}
		case *ast.CallExpr:
			if isEndCall(stmt) {
				plain = append(plain, stmt.Pos())
			}
		}
		return true
	})
	return deferred, plain
}

// returnBetween reports whether any return statement sits strictly between
// the two positions — a path that escapes before the span is closed.
func returnBetween(body *ast.BlockStmt, from, to token.Pos) bool {
	found := false
	inspectShallow(body, func(n ast.Node) bool {
		if ret, ok := n.(*ast.ReturnStmt); ok && ret.Pos() > from && ret.Pos() < to {
			found = true
		}
		return !found
	})
	return found
}

// maxPos returns the latest of the given positions.
func maxPos(ps []token.Pos) token.Pos {
	m := ps[0]
	for _, p := range ps[1:] {
		if p > m {
			m = p
		}
	}
	return m
}
