package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// lintSource writes src as a single file in a temp tree under dir and lints
// the tree with the default config.
func lintSource(t *testing.T, dir, src string) []Finding {
	t.Helper()
	root := t.TempDir()
	full := filepath.Join(root, filepath.FromSlash(dir))
	if err := os.MkdirAll(full, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(full, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Lint(root, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func kinds(fs []Finding) map[string]int {
	m := map[string]int{}
	for _, f := range fs {
		m[f.Rule]++
	}
	return m
}

func TestRawAddrFlaggedOutsideMemorySystem(t *testing.T) {
	src := `package apps
func f(b struct{ Addr, Size int64 }) int64 { return b.Addr + 64 }
`
	got := lintSource(t, "internal/apps/demo", src)
	if kinds(got)["rawaddr"] != 1 {
		t.Fatalf("want 1 rawaddr finding, got %v", got)
	}
}

func TestRawAddrAllowedInMemorySystem(t *testing.T) {
	src := `package mmu
func f(b struct{ Addr, Size int64 }) int64 { return b.Addr + 64 }
`
	if got := lintSource(t, "internal/mmu", src); len(got) != 0 {
		t.Fatalf("memory system flagged: %v", got)
	}
}

func TestRawAddrIgnoresLayoutAccessor(t *testing.T) {
	src := `package apps
type layout struct{}
func (layout) Addr(string) int64 { return 0 }
func f(lay layout, i int64) int64 { return lay.Addr("frame") + i*4 }
`
	if got := lintSource(t, "internal/apps/demo", src); len(got) != 0 {
		t.Fatalf("Layout accessor flagged: %v", got)
	}
}

func TestUnitsMixFlagged(t *testing.T) {
	src := `package apps
func f(copyTime, dramBytes int64) int64 { return copyTime + dramBytes }
`
	got := lintSource(t, "internal/apps/demo", src)
	if kinds(got)["unitsmix"] != 1 {
		t.Fatalf("want 1 unitsmix finding, got %v", got)
	}
}

func TestUnitsMixAllowsSameDomainAndRates(t *testing.T) {
	src := `package apps
func f(copyTime, kernelTime, dramBytes, copyBytes int64) int64 {
	_ = copyTime + kernelTime          // latency + latency: fine
	_ = dramBytes - copyBytes          // bytes - bytes: fine
	return dramBytes / (copyTime + 1)  // conversion through a rate: fine
}
`
	if got := lintSource(t, "internal/apps/demo", src); len(got) != 0 {
		t.Fatalf("legitimate arithmetic flagged: %v", got)
	}
}

func TestValidateWrapFlagged(t *testing.T) {
	src := `package demo
import "fmt"
type C struct{}
func (C) Validate() error { return fmt.Errorf("bad value %d", 3) }
`
	got := lintSource(t, "internal/demo", src)
	if kinds(got)["validatewrap"] != 1 {
		t.Fatalf("want 1 validatewrap finding, got %v", got)
	}
}

func TestValidateWrapAcceptsPrefixedForms(t *testing.T) {
	src := `package demo
import ( "errors"; "fmt" )
type C struct{}
func (C) Validate() error {
	if false { return errors.New("demo: empty") }
	if false { return fmt.Errorf("demo %s: bad", "x") }
	return fmt.Errorf("demo: bad value %d", 3)
}
func helper() error { return fmt.Errorf("anything goes outside Validate") }
`
	if got := lintSource(t, "internal/demo", src); len(got) != 0 {
		t.Fatalf("prefixed errors flagged: %v", got)
	}
}

func TestTestFilesSkipped(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "internal", "apps")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package apps
func f(b struct{ Addr int64 }) int64 { return b.Addr + 64 }
`
	if err := os.WriteFile(filepath.Join(dir, "x_test.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Lint(root, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("test file linted: %v", got)
	}
}

// TestRepositoryIsClean is the gate itself: the repo this analyzer ships in
// must pass its own rules.
func TestRepositoryIsClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Lint(root, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range got {
		t.Errorf("%s", f)
	}
}
