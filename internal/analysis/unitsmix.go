package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// unitsMixAnalyzer is the type-aware unitsmix rule. The syntactic version
// only saw names ("copyTime + dramBytes"); this one additionally tracks the
// named quantity types of internal/units (Latency, Cycles, Hertz,
// BytesPerSecond) and time.Duration through conversions, so laundering a
// latency through float64() no longer hides the mix. Adding or subtracting
// two different unit classes is a units error no matter what the Go types
// say; conversions between domains must go through an explicit rate
// (division), which the rule leaves alone.
func unitsMixAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "unitsmix",
		Doc:  "no + or - between different physical-unit classes (latency, cycles, bytes, bandwidth, frequency)",
		Run: func(pass *Pass) []Finding {
			var out []Finding
			for _, f := range pass.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					b, ok := n.(*ast.BinaryExpr)
					if !ok || (b.Op != token.ADD && b.Op != token.SUB) {
						return true
					}
					cx := unitClassOf(pass, b.X)
					cy := unitClassOf(pass, b.Y)
					if cx == "" || cy == "" || cx == cy {
						return true
					}
					out = append(out, Finding{
						Pos:  pass.Position(b.Pos()),
						Rule: "unitsmix",
						Msg: fmt.Sprintf("adding %s to %s; convert through an explicit rate instead",
							cx, cy),
					})
					return true
				})
			}
			return out
		},
	}
}

// unitClassOf classifies an expression's physical unit: first by its static
// type (the units.* named quantities and time.Duration), then by unwrapping
// numeric conversions that would otherwise launder the type, and finally by
// the name heuristic the syntactic rule used.
func unitClassOf(pass *Pass, e ast.Expr) string {
	e = ast.Unparen(e)

	if t := pass.TypeOf(e); t != nil {
		// String concatenation and untyped constants carry no unit.
		if basic, ok := t.Underlying().(*types.Basic); ok {
			if basic.Info()&types.IsString != 0 || basic.Info()&types.IsUntyped != 0 {
				return ""
			}
		}
		if c := unitClassOfType(t); c != "" {
			return c
		}
	}

	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		// A conversion to a plain numeric type (float64(lat), int64(n))
		// hides the operand's unit — classify the operand instead.
		if pass.Pkg.Info != nil {
			if tv, ok := pass.Pkg.Info.Types[call.Fun]; ok && tv.IsType() {
				if unitClassOfType(tv.Type) == "" {
					return unitClassOf(pass, call.Args[0])
				}
				return unitClassOfType(tv.Type)
			}
		}
		// Known unit-producing accessors on the quantity types.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if rc := unitClassOfType(pass.TypeOf(sel.X)); rc != "" {
				switch sel.Sel.Name {
				case "Seconds", "Duration", "Lat", "TimeFor":
					return "latency"
				case "GB":
					return "bandwidth"
				}
			}
		}
	}

	return unitClass(e)
}

// unitClassOfType maps the named quantity types to their unit class:
// units.Latency and time.Duration are wall time, units.Cycles is a clock
// domain's own time, units.BytesPerSecond a rate, units.Hertz a frequency.
func unitClassOfType(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	switch {
	case obj.Pkg().Path() == "time" && obj.Name() == "Duration":
		return "latency"
	case hasPathSuffix(obj.Pkg().Path(), "internal/units"):
		switch obj.Name() {
		case "Latency":
			return "latency"
		case "Cycles":
			return "cycles"
		case "Hertz":
			return "frequency"
		case "BytesPerSecond":
			return "bandwidth"
		}
	}
	return ""
}

// hasPathSuffix reports whether an import path is exactly suffix or ends
// with "/"+suffix.
func hasPathSuffix(path, suffix string) bool {
	return path == suffix || (len(path) > len(suffix) &&
		path[len(path)-len(suffix)-1] == '/' &&
		path[len(path)-len(suffix):] == suffix)
}
