package perfmodel

import (
	"math"
	"testing"
	"testing/quick"

	"igpucomm/internal/units"
)

func TestCPUCacheUsage(t *testing.T) {
	tests := []struct {
		name           string
		l1Miss, llMiss float64
		want           float64
	}{
		{"all L1 hits", 0, 0.5, 0},
		{"L1 misses all caught by LLC", 0.2, 0, 0.2},
		{"L1 misses all missing LLC", 0.2, 1, 0},
		{"paper-ish value", 0.25, 0.2, 0.2},
		{"clamped inputs", 1.5, -0.5, 1},
	}
	for _, tt := range tests {
		if got := CPUCacheUsage(tt.l1Miss, tt.llMiss); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("%s: usage = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestGPUCacheUsage(t *testing.T) {
	// 1e6 transactions of 64B with 0% L1 hits in 1ms = 64 GB/s demand;
	// against a 128 GB/s peak -> 50% usage.
	got := GPUCacheUsage(1e6, 64, 0, units.Latency(1e6), 128*units.GBps)
	if math.Abs(got-0.5) > 1e-9 {
		t.Errorf("usage = %v, want 0.5", got)
	}
	// 50% L1 hit rate halves the demand.
	got = GPUCacheUsage(1e6, 64, 0.5, units.Latency(1e6), 128*units.GBps)
	if math.Abs(got-0.25) > 1e-9 {
		t.Errorf("usage with hits = %v, want 0.25", got)
	}
	if GPUCacheUsage(1, 64, 0, 0, units.GBps) != 0 {
		t.Error("zero runtime should give zero usage")
	}
	if GPUCacheUsage(1, 64, 0, 1, 0) != 0 {
		t.Error("zero peak should give zero usage")
	}
}

func TestGPUCacheUsageFromBytesMatches(t *testing.T) {
	a := GPUCacheUsage(1000, 64, 0.3, units.Latency(5e5), 97*units.GBps)
	b := GPUCacheUsageFromBytes(64000, 0.3, units.Latency(5e5), 97*units.GBps)
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("two forms disagree: %v vs %v", a, b)
	}
}

func TestInputsValidate(t *testing.T) {
	good := Inputs{Runtime: 1000, CopyTime: 100, CPUTime: 300, GPUTime: 400}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid inputs rejected: %v", err)
	}
	bad := []Inputs{
		{Runtime: 0, GPUTime: 1},
		{Runtime: 100, CopyTime: -1, GPUTime: 1},
		{Runtime: 100, GPUTime: 0},
		{Runtime: 100, CopyTime: 100, GPUTime: 1},
		{Runtime: 100, CPUTime: -5, GPUTime: 1},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("bad input %d accepted", i)
		}
	}
}

func TestSCToZCKnownValues(t *testing.T) {
	// Balanced tasks, copy = 20% of runtime: est = 0.8R/2 = 0.4R -> 2.5x.
	in := Inputs{Runtime: 1000, CopyTime: 200, CPUTime: 400, GPUTime: 400}
	sp, err := SCToZC(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sp-2.5) > 1e-9 {
		t.Errorf("speedup = %v, want 2.5", sp)
	}
	// Cap applies.
	sp, err = SCToZC(in, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if sp != 2.0 {
		t.Errorf("capped speedup = %v, want 2.0", sp)
	}
}

func TestSCToZCNoCopyNoCPU(t *testing.T) {
	// Without copy time and CPU work there is nothing to gain.
	in := Inputs{Runtime: 1000, CopyTime: 0, CPUTime: 0, GPUTime: 1000}
	sp, err := SCToZC(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sp-1.0) > 1e-9 {
		t.Errorf("speedup = %v, want 1.0", sp)
	}
}

func TestZCToSCSerializationPenalty(t *testing.T) {
	// Overlapped ZC run: serializing always looks worse structurally
	// (eqn 4 captures SC's overheads; the cache gain is capped separately).
	in := Inputs{Runtime: 1000, CopyTime: 100, CPUTime: 500, GPUTime: 1000}
	sp, err := ZCToSC(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	// est = 1000*1.5 + 100 = 1600 -> 0.625.
	if math.Abs(sp-0.625) > 1e-9 {
		t.Errorf("speedup = %v, want 0.625", sp)
	}
}

func TestKernelGainZCToSC(t *testing.T) {
	if g := KernelGainZCToSC(10*units.GBps, 1.28*units.GBps, 77); math.Abs(g-7.8125) > 1e-6 {
		t.Errorf("gain = %v, want ~7.81", g)
	}
	if g := KernelGainZCToSC(100*units.GBps, 1*units.GBps, 10); g != 10 {
		t.Errorf("cap not applied: %v", g)
	}
	if g := KernelGainZCToSC(0.5*units.GBps, 1*units.GBps, 77); g != 1 {
		t.Errorf("sub-path demand should give 1, got %v", g)
	}
	if g := KernelGainZCToSC(0, 0, 0); g != 1 {
		t.Errorf("degenerate gain = %v, want 1", g)
	}
}

func TestSpeedupPercent(t *testing.T) {
	if got := SpeedupPercent(1.38); math.Abs(got-38) > 1e-9 {
		t.Errorf("1.38x = %v%%, want 38", got)
	}
	if got := SpeedupPercent(0.33); math.Abs(got+67) > 1e-9 {
		t.Errorf("0.33x = %v%%, want -67", got)
	}
}

func TestThresholdsValidate(t *testing.T) {
	good := Thresholds{CPUCache: 0.156, GPUCacheLow: 0.162, GPUCacheHigh: 0.571}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid thresholds rejected: %v", err)
	}
	if err := (Thresholds{GPUCacheLow: 0.5, GPUCacheHigh: 0.2}).Validate(); err == nil {
		t.Error("inverted zone accepted")
	}
	if err := (Thresholds{CPUCache: -0.1}).Validate(); err == nil {
		t.Error("negative threshold accepted")
	}
}

// Property: eqn 3 speedup grows with copy time (more copy to eliminate =>
// more to gain) and is always >= 1 when CPU time is nonnegative.
func TestPropertySCToZCMonotoneInCopy(t *testing.T) {
	f := func(copyPct uint8, cpuPct uint8) bool {
		runtime := units.Latency(1e6)
		copyT := units.Latency(float64(copyPct%90) / 100 * 1e6)
		cpuT := units.Latency(float64(cpuPct%100) / 100 * 1e6)
		in1 := Inputs{Runtime: runtime, CopyTime: copyT, CPUTime: cpuT, GPUTime: 1e5}
		in2 := in1
		in2.CopyTime += 1e4
		s1, err1 := SCToZC(in1, 0)
		s2, err2 := SCToZC(in2, 0)
		if err1 != nil || err2 != nil {
			return false
		}
		return s2 >= s1 && s1 >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: caps are respected by both estimators.
func TestPropertyCapsRespected(t *testing.T) {
	f := func(copyPct, cap8 uint8) bool {
		max := 1 + float64(cap8%50)/10
		in := Inputs{
			Runtime:  1e6,
			CopyTime: units.Latency(float64(copyPct%90) / 100 * 1e6),
			CPUTime:  5e5,
			GPUTime:  5e5,
		}
		s3, err := SCToZC(in, max)
		if err != nil || s3 > max+1e-12 {
			return false
		}
		s4, err := ZCToSC(in, max)
		return err == nil && s4 <= max+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCPUCacheUsagePerInstr(t *testing.T) {
	// 100 L1 misses all caught by the LLC over 1000 instructions: 10%.
	if got := CPUCacheUsagePerInstr(100, 0, 1000); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("usage = %v, want 0.1", got)
	}
	// LLC misses discount the metric: only LLC-served misses count.
	if got := CPUCacheUsagePerInstr(100, 0.5, 1000); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("usage with LLC misses = %v, want 0.05", got)
	}
	if CPUCacheUsagePerInstr(0, 0, 1000) != 0 {
		t.Error("no misses should give 0")
	}
	if CPUCacheUsagePerInstr(10, 0, 0) != 0 {
		t.Error("no instructions should give 0")
	}
	if CPUCacheUsagePerInstr(-5, 0, 100) != 0 {
		t.Error("negative misses should give 0")
	}
	// Reduces to eqn 1 when every instruction is a load.
	perAccess := CPUCacheUsage(0.25, 0.2)
	perInstr := CPUCacheUsagePerInstr(250, 0.2, 1000)
	if math.Abs(perAccess-perInstr) > 1e-12 {
		t.Errorf("per-instr %v != eqn1 %v for all-load streams", perInstr, perAccess)
	}
}
