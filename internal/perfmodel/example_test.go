package perfmodel_test

import (
	"fmt"

	"igpucomm/internal/perfmodel"
	"igpucomm/internal/units"
)

// Eqn 1: an application whose L1 misses are all caught by the LLC depends on
// that LLC — disabling it under zero-copy will hurt.
func ExampleCPUCacheUsage() {
	usage := perfmodel.CPUCacheUsage(0.25, 0.2) // 25% L1 misses, 20% of those miss the LLC
	fmt.Printf("%.0f%% of requests are served by the CPU LLC\n", usage*100)
	// Output: 20% of requests are served by the CPU LLC
}

// Eqn 3: the potential gain of replacing standard copy with zero-copy —
// the copies disappear and the CPU and GPU tasks overlap.
func ExampleSCToZC() {
	speedup, err := perfmodel.SCToZC(perfmodel.Inputs{
		Runtime:  units.Lat(1000 * 1000), // 1ms per frame under SC
		CopyTime: units.Lat(200 * 1000),  // 200µs of that is copying
		CPUTime:  units.Lat(400 * 1000),
		GPUTime:  units.Lat(400 * 1000),
	}, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("up to %.1fx (%.0f%%)\n", speedup, perfmodel.SpeedupPercent(speedup))
	// Output: up to 2.5x (150%)
}

// Eqn 2: the kernel's demand on the GPU LL-L1 cache, as a fraction of what
// the device can serve (the peak comes from the first micro-benchmark).
func ExampleGPUCacheUsage() {
	usage := perfmodel.GPUCacheUsage(
		1_000_000, 64, 0.5, // 1M transactions of 64B, half absorbed by L1
		units.Lat(1000*1000), // over a 1ms kernel
		97*units.GBps,        // against a 97 GB/s peak (TX2)
	)
	fmt.Printf("GPU cache usage %.0f%%\n", usage*100)
	// Output: GPU cache usage 33%
}
