package perfmodel_test

import (
	"context"
	"encoding/json"
	"testing"

	"igpucomm/internal/apps/catalog"
	"igpucomm/internal/devices"
	"igpucomm/internal/framework"
	"igpucomm/internal/microbench"
	"igpucomm/internal/perfmodel"
	"igpucomm/internal/soc"
	"igpucomm/internal/units"
	"time"
)

// Metamorphic tests for the paper's performance model: instead of asserting
// exact outputs, these pin down how the outputs must MOVE when the inputs
// move — the relations eqns 1-4 promise — and that the device maxima from the
// micro-benchmarks really cap the estimators, on every catalog device.

// ms is one simulated millisecond.
const ms = units.Latency(float64(time.Millisecond / time.Nanosecond))

func baseInputs() perfmodel.Inputs {
	return perfmodel.Inputs{
		Runtime:  100 * ms,
		CopyTime: 20 * ms,
		CPUTime:  30 * ms,
		GPUTime:  40 * ms,
	}
}

// Eqn 1: more L1 misses -> more LLC-served traffic; more LLC misses -> less.
func TestCPUCacheUsageMonotone(t *testing.T) {
	prev := -1.0
	for _, l1 := range []float64{0, 0.1, 0.3, 0.5, 0.8, 1} {
		u := perfmodel.CPUCacheUsage(l1, 0.2)
		if u < prev {
			t.Errorf("CPUCacheUsage not monotone in L1 miss rate at %v: %v < %v", l1, u, prev)
		}
		prev = u
	}
	prev = 2.0
	for _, llc := range []float64{0, 0.1, 0.3, 0.5, 0.8, 1} {
		u := perfmodel.CPUCacheUsage(0.5, llc)
		if u > prev {
			t.Errorf("CPUCacheUsage not antitone in LLC miss rate at %v: %v > %v", llc, u, prev)
		}
		prev = u
	}
	// Out-of-range profiler rates clamp instead of exploding.
	if u := perfmodel.CPUCacheUsage(1.5, -0.2); u != 1 {
		t.Errorf("clamped usage = %v, want 1", u)
	}
}

// Eqn 2: more transactions -> more demand; better L1 hit rate or a slower
// kernel -> less.
func TestGPUCacheUsageMonotone(t *testing.T) {
	const size = 32
	rt := 10 * ms
	peak := 100 * units.GBps
	prev := -1.0
	for _, tn := range []int64{0, 1e3, 1e5, 1e7} {
		u := perfmodel.GPUCacheUsage(tn, size, 0.5, rt, peak)
		if u < prev {
			t.Errorf("GPUCacheUsage not monotone in transactions at %d: %v < %v", tn, u, prev)
		}
		prev = u
	}
	prev = 2.0
	for _, hit := range []float64{0, 0.25, 0.5, 0.75, 1} {
		u := perfmodel.GPUCacheUsage(1e6, size, hit, rt, peak)
		if u > prev {
			t.Errorf("GPUCacheUsage not antitone in L1 hit rate at %v: %v > %v", hit, u, prev)
		}
		prev = u
	}
	if a, b := perfmodel.GPUCacheUsage(1e6, size, 0.5, rt, peak),
		perfmodel.GPUCacheUsage(1e6, size, 0.5, 2*rt, peak); b > a {
		t.Errorf("slower kernel increased usage: %v > %v", b, a)
	}
	// The FromBytes variant must agree with the pre-multiplied form.
	if a, b := perfmodel.GPUCacheUsage(1e6, size, 0.3, rt, peak),
		perfmodel.GPUCacheUsageFromBytes(1e6*size, 0.3, rt, peak); a != b {
		t.Errorf("FromBytes variant diverges: %v vs %v", a, b)
	}
}

// Eqn 3: removing more copy time can only raise the SC->ZC speedup, and more
// CPU work to overlap can only raise it too.
func TestSCToZCMonotone(t *testing.T) {
	prev := 0.0
	for _, copyT := range []units.Latency{0, 5 * ms, 20 * ms, 60 * ms} {
		in := baseInputs()
		in.CopyTime = copyT
		s, err := perfmodel.SCToZC(in, 0) // uncapped
		if err != nil {
			t.Fatalf("CopyTime %v: %v", copyT, err)
		}
		if s < prev {
			t.Errorf("SCToZC not monotone in copy time at %v: %v < %v", copyT, s, prev)
		}
		prev = s
	}
	prev = 0.0
	for _, cpuT := range []units.Latency{0, 10 * ms, 30 * ms, 80 * ms} {
		in := baseInputs()
		in.CPUTime = cpuT
		s, err := perfmodel.SCToZC(in, 0)
		if err != nil {
			t.Fatalf("CPUTime %v: %v", cpuT, err)
		}
		if s < prev {
			t.Errorf("SCToZC not monotone in CPU overlap at %v: %v < %v", cpuT, s, prev)
		}
		prev = s
	}
	// With nothing to remove and nothing to overlap, the estimate is exactly
	// "no change".
	in := baseInputs()
	in.CopyTime, in.CPUTime = 0, 0
	if s, err := perfmodel.SCToZC(in, 0); err != nil || s != 1 {
		t.Errorf("degenerate SCToZC = %v, %v, want exactly 1", s, err)
	}
}

// Eqn 4's structural estimate only sees costs (serialization + copies), so it
// can never exceed 1; the cache win rides in through KernelGainZCToSC, which
// is bounded below by 1 and above by the device cap.
func TestZCToSCBounds(t *testing.T) {
	for _, copyT := range []units.Latency{0, 10 * ms, 50 * ms} {
		in := baseInputs()
		in.CopyTime = copyT
		s, err := perfmodel.ZCToSC(in, 0)
		if err != nil {
			t.Fatal(err)
		}
		if s > 1 {
			t.Errorf("structural ZCToSC = %v > 1 (it models pure cost)", s)
		}
	}
	if g := perfmodel.KernelGainZCToSC(50*units.GBps, 100*units.GBps, 0); g != 1 {
		t.Errorf("undersubscribed pinned path gain = %v, want 1", g)
	}
	if g := perfmodel.KernelGainZCToSC(400*units.GBps, 1*units.GBps, 3.5); g != 3.5 {
		t.Errorf("gain = %v, want capped at 3.5", g)
	}
}

// Symmetric caps, per device: the estimators must never promise more than the
// micro-benchmarks measured — SCToZC is capped by MB3's SC/ZC_Max_speedup
// and the ZC->SC kernel gain by MB1's cached/pinned ratio — even for inputs
// engineered to exceed them.
func TestCapsHoldOnAllCatalogDevices(t *testing.T) {
	p := microbench.TestParams()
	for _, cfg := range devices.All() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			char, err := framework.Characterize(context.Background(), soc.New(cfg), p)
			if err != nil {
				t.Fatal(err)
			}
			if char.SCZCMaxSpeedup <= 0 || char.ZCSCMaxSpeedup <= 0 {
				t.Fatalf("degenerate caps: %+v", char)
			}
			// Nearly all runtime is copy time with huge CPU overlap: the
			// uncapped eqn-3 estimate is enormous.
			extreme := perfmodel.Inputs{
				Runtime:  100 * ms,
				CopyTime: 99 * ms,
				CPUTime:  900 * ms,
				GPUTime:  1 * ms,
			}
			s, err := perfmodel.SCToZC(extreme, char.SCZCMaxSpeedup)
			if err != nil {
				t.Fatal(err)
			}
			if s > char.SCZCMaxSpeedup {
				t.Errorf("SCToZC = %v exceeds device cap %v", s, char.SCZCMaxSpeedup)
			}
			g := perfmodel.KernelGainZCToSC(10000*units.GBps, 1*units.GBps, char.ZCSCMaxSpeedup)
			if g > char.ZCSCMaxSpeedup {
				t.Errorf("KernelGainZCToSC = %v exceeds device cap %v", g, char.ZCSCMaxSpeedup)
			}
		})
	}
}

// The advisory pipeline is a pure function of its inputs: advising the same
// device/app/current-model twice must produce identical recommendations,
// byte for byte — across every catalog device and app.
func TestAdviseDeterministic(t *testing.T) {
	p := microbench.TestParams()
	for _, cfg := range devices.All() {
		char, err := framework.Characterize(context.Background(), soc.New(cfg), p)
		if err != nil {
			t.Fatal(err)
		}
		for _, app := range catalog.Names() {
			for _, current := range []string{"sc", "zc"} {
				cfg, app, current := cfg, app, current
				t.Run(cfg.Name+"/"+app+"/"+current, func(t *testing.T) {
					w, err := catalog.ByName(app, catalog.Quick)
					if err != nil {
						t.Fatal(err)
					}
					r1, err := framework.AdviseWorkload(context.Background(), char, soc.New(cfg), w, current)
					if err != nil {
						t.Fatal(err)
					}
					r2, err := framework.AdviseWorkload(context.Background(), char, soc.New(cfg), w, current)
					if err != nil {
						t.Fatal(err)
					}
					b1, err := json.Marshal(r1)
					if err != nil {
						t.Fatal(err)
					}
					b2, err := json.Marshal(r2)
					if err != nil {
						t.Fatal(err)
					}
					if string(b1) != string(b2) {
						t.Errorf("advice is not deterministic:\nfirst:  %s\nsecond: %s", b1, b2)
					}
				})
			}
		}
	}
}
