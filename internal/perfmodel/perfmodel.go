// Package perfmodel implements the paper's performance model (§III-A):
// the LLC cache-usage metrics derived from profiler counters (eqns 1-2) and
// the potential-speedup estimators for switching communication model
// (eqns 3-4), capped by the device maxima the micro-benchmarks extract.
package perfmodel

import (
	"fmt"

	"igpucomm/internal/units"
)

// CPUCacheUsage is eqn 1: the fraction of all CPU-requested data served by
// the CPU LLC —
//
//	CPU_Cache_usage = miss_rate_L1_CPU * (1 - miss_rate_LL_CPU)
//
// An L1 miss that the LLC catches is exactly the traffic that disappears
// (or becomes DRAM traffic) when zero-copy disables/bypasses the LLC, so a
// high value means the application depends on the CPU cache.
func CPUCacheUsage(l1MissRate, llcMissRate float64) float64 {
	return clamp01(l1MissRate) * (1 - clamp01(llcMissRate))
}

// CPUCacheUsagePerInstr is the instruction-normalized variant of eqn 1:
// the fraction of *instructions* whose data was served by the CPU LLC,
//
//	(L1_misses * (1 - miss_rate_LL_CPU)) / instructions
//
// It reduces to eqn 1 when every instruction is a load, and unlike the
// per-access form it is sensitive to how memory-dense the routine is — which
// is what the framework's CPU threshold (extracted by a density sweep in the
// second micro-benchmark) discriminates on.
func CPUCacheUsagePerInstr(l1Misses int64, llcMissRate float64, instrs int64) float64 {
	if instrs <= 0 || l1Misses <= 0 {
		return 0
	}
	return float64(l1Misses) * (1 - clamp01(llcMissRate)) / float64(instrs)
}

// GPUCacheUsage is eqn 2: the GPU LL-L1 demand throughput of the kernel,
//
//	(t_n * t_size * (1 - hit_rate_L1_GPU)) / kernel_runtime
//
// normalized by the device's peak GPU cache throughput (from the first
// micro-benchmark). The result is the fraction of the cache's capability the
// kernel actually leans on; past the device's threshold, zero-copy (which
// bypasses that cache) starves the kernel.
func GPUCacheUsage(transactions, transactionSize int64, l1HitRate float64,
	kernelRuntime units.Latency, maxThroughput units.BytesPerSecond) float64 {
	if kernelRuntime <= 0 || maxThroughput <= 0 {
		return 0
	}
	demandBytes := float64(transactions) * float64(transactionSize) * (1 - clamp01(l1HitRate))
	demand := demandBytes / kernelRuntime.Seconds()
	return demand / float64(maxThroughput)
}

// GPUCacheUsageFromBytes is the same metric when the profiler reports total
// transaction bytes directly (t_n * t_size pre-multiplied).
func GPUCacheUsageFromBytes(transactionBytes int64, l1HitRate float64,
	kernelRuntime units.Latency, maxThroughput units.BytesPerSecond) float64 {
	if kernelRuntime <= 0 || maxThroughput <= 0 {
		return 0
	}
	demand := float64(transactionBytes) * (1 - clamp01(l1HitRate)) / kernelRuntime.Seconds()
	return demand / float64(maxThroughput)
}

// Inputs carries the measured quantities eqns 3-4 consume.
type Inputs struct {
	Runtime  units.Latency // end-to-end runtime under the current model
	CopyTime units.Latency // total CPU-iGPU transfer time within Runtime
	CPUTime  units.Latency // CPU-task-only time
	GPUTime  units.Latency // GPU-kernel-only time
}

// Validate reports impossible measurements.
func (in Inputs) Validate() error {
	if in.Runtime <= 0 {
		return fmt.Errorf("perfmodel: runtime must be positive")
	}
	if in.CopyTime < 0 || in.CPUTime < 0 || in.GPUTime <= 0 {
		return fmt.Errorf("perfmodel: negative component time")
	}
	if in.CopyTime >= in.Runtime {
		return fmt.Errorf("perfmodel: copy time %v not inside runtime %v", in.CopyTime, in.Runtime)
	}
	return nil
}

// SCToZC is eqn 3: the potential speedup of replacing SC with ZC for an
// application classified as NOT cache-dependent. The estimated ZC runtime
// removes the copy time and overlaps the CPU and GPU tasks:
//
//	speedup = SC_runtime / [ (SC_runtime - copy_time) / (1 + CPU/GPU) ]
//
// capped at the device's SC/ZC_Max_speedup (from the third micro-benchmark).
// Values are ratios: 1.0 means no change; the paper reports (ratio-1)*100%.
func SCToZC(in Inputs, maxSpeedup float64) (float64, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	overlap := 1 + float64(in.CPUTime)/float64(in.GPUTime)
	est := (float64(in.Runtime) - float64(in.CopyTime)) / overlap
	speedup := float64(in.Runtime) / est
	return capSpeedup(speedup, maxSpeedup), nil
}

// ZCToSC is eqn 4: the potential speedup of replacing ZC with SC for an
// application classified as cache-dependent. The estimated SC runtime
// serializes the (currently overlapped) CPU and GPU tasks and re-adds the
// copy time:
//
//	speedup = ZC_runtime / ( ZC_runtime / [1/(1 + CPU/GPU)] + copy_time )
//
// The cache benefit itself is bounded separately by ZC/SC_Max_speedup (the
// cached-vs-pinned throughput ratio from the first micro-benchmark), which
// caps the returned value.
func ZCToSC(in Inputs, maxSpeedup float64) (float64, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	serialize := 1 + float64(in.CPUTime)/float64(in.GPUTime)
	est := float64(in.Runtime)*serialize + float64(in.CopyTime)
	speedup := float64(in.Runtime) / est
	return capSpeedup(speedup, maxSpeedup), nil
}

// KernelGainZCToSC estimates how much faster the kernel alone becomes when a
// cache-dependent application leaves the pinned path: the ratio of demanded
// throughput to what the pinned path can serve, bounded by the device
// maximum. This is the quantity the framework combines with eqn 4 when the
// structural estimate alone (which only sees serialization and copy
// overhead) says "no change".
func KernelGainZCToSC(demand, pinnedThroughput units.BytesPerSecond, maxSpeedup float64) float64 {
	if demand <= 0 || pinnedThroughput <= 0 {
		return 1
	}
	gain := float64(demand) / float64(pinnedThroughput)
	if gain < 1 {
		gain = 1
	}
	return capSpeedup(gain, maxSpeedup)
}

// SpeedupPercent converts a speedup ratio to the paper's percentage
// convention: 1.38x -> +38%, 0.33x -> -67%.
func SpeedupPercent(ratio float64) float64 { return (ratio - 1) * 100 }

func capSpeedup(s, max float64) float64 {
	if max > 0 && s > max {
		return max
	}
	return s
}

func clamp01(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	default:
		return x
	}
}

// Thresholds holds one device's cache-usage decision boundaries, as
// extracted by the second micro-benchmark.
type Thresholds struct {
	// CPUCache is the CPU cache-usage level above which ZC's cache
	// disabling hurts (1.0 on devices whose CPU caches stay enabled).
	CPUCache float64
	// GPUCacheLow is the GPU cache usage below which ZC performs on par
	// with SC (the left zone of Figs 3/6).
	GPUCacheLow float64
	// GPUCacheHigh bounds the middle zone where ZC is tolerable if the
	// application gains enough from overlap; above it, ZC is strongly
	// discouraged. Devices without a usable middle zone set it equal to
	// GPUCacheLow.
	GPUCacheHigh float64
}

// Validate checks ordering.
func (t Thresholds) Validate() error {
	if t.CPUCache < 0 || t.GPUCacheLow < 0 {
		return fmt.Errorf("perfmodel: negative threshold")
	}
	if t.GPUCacheHigh < t.GPUCacheLow {
		return fmt.Errorf("perfmodel: GPU threshold zone inverted (%v > %v)", t.GPUCacheLow, t.GPUCacheHigh)
	}
	return nil
}
