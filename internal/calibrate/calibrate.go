// Package calibrate documents and automates how the device catalogs were
// fitted to the paper's measured characterization: given a target value from
// Table I, search the corresponding platform parameter until the first
// micro-benchmark reproduces it. The catalogs in internal/devices were tuned
// exactly this way; the harness lets anyone re-derive them — or fit a new
// board from its own measurements.
package calibrate

import (
	"context"
	"fmt"

	"igpucomm/internal/microbench"
	"igpucomm/internal/soc"
	"igpucomm/internal/units"
)

// Target is a device's Table-I objective.
type Target struct {
	// SCThroughput is the measured cached GPU throughput (SC row).
	SCThroughput units.BytesPerSecond
	// ZCThroughput is the measured pinned-path throughput (ZC row).
	ZCThroughput units.BytesPerSecond
	// Tolerance is the acceptable relative error (e.g. 0.05).
	Tolerance float64
}

// Validate reports problems.
func (t Target) Validate() error {
	if t.SCThroughput <= 0 && t.ZCThroughput <= 0 {
		return fmt.Errorf("calibrate: target needs at least one throughput")
	}
	if t.Tolerance <= 0 || t.Tolerance >= 1 {
		return fmt.Errorf("calibrate: tolerance %v out of (0,1)", t.Tolerance)
	}
	return nil
}

// MB1Runner measures the first micro-benchmark for a candidate
// configuration. The default, SerialMB1, builds a fresh platform and runs the
// benchmark inline; callers with an execution engine inject its memoized
// runner instead, so re-measuring the same candidate (the Verify step after a
// fit, or fitting -sc and -zc against one config) costs one simulation, not
// two.
type MB1Runner func(ctx context.Context, cfg soc.Config, p microbench.Params) (microbench.MB1Result, error)

// SerialMB1 is the default, uncached MB1Runner.
func SerialMB1(ctx context.Context, cfg soc.Config, p microbench.Params) (microbench.MB1Result, error) {
	return microbench.RunMB1(ctx, soc.New(cfg), p)
}

// measureSC runs MB1 and returns the SC-row throughput.
func measureSC(ctx context.Context, run MB1Runner, cfg soc.Config, p microbench.Params) (units.BytesPerSecond, error) {
	res, err := run(ctx, cfg, p)
	if err != nil {
		return 0, err
	}
	return res.PeakThroughput(), nil
}

// measureZC runs MB1 and returns the ZC-row throughput.
func measureZC(ctx context.Context, run MB1Runner, cfg soc.Config, p microbench.Params) (units.BytesPerSecond, error) {
	res, err := run(ctx, cfg, p)
	if err != nil {
		return 0, err
	}
	return res.PinnedThroughput(), nil
}

// maxBisectIters bounds the search; 40 halvings of any sane bracket reach
// float precision long before this.
const maxBisectIters = 40

// bisect finds a parameter value in [lo, hi] whose measurement lands within
// tol of target, assuming the measurement is monotone non-decreasing in the
// parameter.
func bisect(lo, hi float64, target units.BytesPerSecond, tol float64,
	measure func(v float64) (units.BytesPerSecond, error)) (float64, error) {
	check := func(v float64) (float64, bool, error) {
		got, err := measure(v)
		if err != nil {
			return 0, false, err
		}
		rel := (float64(got) - float64(target)) / float64(target)
		return rel, rel >= -tol && rel <= tol, nil
	}
	// Ensure the bracket actually straddles the target.
	relLo, okLo, err := check(lo)
	if err != nil {
		return 0, err
	}
	if okLo {
		return lo, nil
	}
	relHi, okHi, err := check(hi)
	if err != nil {
		return 0, err
	}
	if okHi {
		return hi, nil
	}
	if relLo > 0 || relHi < 0 {
		return 0, fmt.Errorf("calibrate: target %.2f GB/s not reachable in [%g, %g] (got %.1f%%..%.1f%%)",
			target.GB(), lo, hi, relLo*100, relHi*100)
	}
	for i := 0; i < maxBisectIters; i++ {
		mid := (lo + hi) / 2
		rel, ok, err := check(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			return mid, nil
		}
		if rel < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0, fmt.Errorf("calibrate: no convergence to %.2f GB/s within %d iterations", target.GB(), maxBisectIters)
}

// TuneLLCBandwidth fits cfg.GPU.LLCBandwidth so the first micro-benchmark's
// SC throughput matches the target. Returns the fitted config.
func TuneLLCBandwidth(ctx context.Context, cfg soc.Config, p microbench.Params, target units.BytesPerSecond, tol float64) (soc.Config, error) {
	return TuneLLCBandwidthWith(ctx, SerialMB1, cfg, p, target, tol)
}

// TuneLLCBandwidthWith is TuneLLCBandwidth with an injected MB1 runner.
func TuneLLCBandwidthWith(ctx context.Context, run MB1Runner, cfg soc.Config, p microbench.Params, target units.BytesPerSecond, tol float64) (soc.Config, error) {
	if target <= 0 || tol <= 0 {
		return soc.Config{}, fmt.Errorf("calibrate: invalid LLC target")
	}
	v, err := bisect(float64(target)/8, float64(target)*8, target, tol, func(v float64) (units.BytesPerSecond, error) {
		c := cfg
		c.GPU.LLCBandwidth = units.BytesPerSecond(v)
		return measureSC(ctx, run, c, p)
	})
	if err != nil {
		return soc.Config{}, err
	}
	out := cfg
	out.GPU.LLCBandwidth = units.BytesPerSecond(v)
	return out, nil
}

// TunePinnedBandwidth fits the zero-copy path bandwidth (the uncached pinned
// port on non-coherent platforms, the I/O-coherent port otherwise) so MB1's
// ZC throughput matches the target.
func TunePinnedBandwidth(ctx context.Context, cfg soc.Config, p microbench.Params, target units.BytesPerSecond, tol float64) (soc.Config, error) {
	return TunePinnedBandwidthWith(ctx, SerialMB1, cfg, p, target, tol)
}

// TunePinnedBandwidthWith is TunePinnedBandwidth with an injected MB1 runner.
func TunePinnedBandwidthWith(ctx context.Context, run MB1Runner, cfg soc.Config, p microbench.Params, target units.BytesPerSecond, tol float64) (soc.Config, error) {
	if target <= 0 || tol <= 0 {
		return soc.Config{}, fmt.Errorf("calibrate: invalid pinned target")
	}
	apply := func(c *soc.Config, v float64) {
		if c.IOCoherent {
			c.IOBandwidth = units.BytesPerSecond(v)
		} else {
			c.PinnedBandwidth = units.BytesPerSecond(v)
		}
	}
	v, err := bisect(float64(target)/8, float64(target)*8, target, tol, func(v float64) (units.BytesPerSecond, error) {
		c := cfg
		apply(&c, v)
		return measureZC(ctx, run, c, p)
	})
	if err != nil {
		return soc.Config{}, err
	}
	out := cfg
	apply(&out, v)
	return out, nil
}

// Verify runs MB1 on the config and checks it against the target.
func Verify(ctx context.Context, cfg soc.Config, p microbench.Params, target Target) error {
	return VerifyWith(ctx, SerialMB1, cfg, p, target)
}

// VerifyWith is Verify with an injected MB1 runner.
func VerifyWith(ctx context.Context, run MB1Runner, cfg soc.Config, p microbench.Params, target Target) error {
	if err := target.Validate(); err != nil {
		return err
	}
	res, err := run(ctx, cfg, p)
	if err != nil {
		return err
	}
	checkRel := func(name string, got, want units.BytesPerSecond) error {
		if want <= 0 {
			return nil
		}
		rel := (float64(got) - float64(want)) / float64(want)
		if rel < -target.Tolerance || rel > target.Tolerance {
			return fmt.Errorf("calibrate: %s throughput %.2f GB/s misses target %.2f GB/s by %.1f%%",
				name, got.GB(), want.GB(), rel*100)
		}
		return nil
	}
	if err := checkRel("SC", res.PeakThroughput(), target.SCThroughput); err != nil {
		return err
	}
	return checkRel("ZC", res.PinnedThroughput(), target.ZCThroughput)
}
