package calibrate

import (
	"context"
	"testing"

	"igpucomm/internal/devices"
	"igpucomm/internal/microbench"
	"igpucomm/internal/soc"
	"igpucomm/internal/units"
)

// reference measures the stock TX2 at test scale; the tuning tests then
// perturb a parameter and require the harness to recover it.
func reference(t *testing.T) (soc.Config, units.BytesPerSecond, units.BytesPerSecond) {
	t.Helper()
	cfg := devices.TX2()
	p := microbench.TestParams()
	res, err := microbench.RunMB1(context.Background(), soc.New(cfg), p)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, res.PeakThroughput(), res.PinnedThroughput()
}

func TestTargetValidate(t *testing.T) {
	good := Target{SCThroughput: 97 * units.GBps, ZCThroughput: 1.28 * units.GBps, Tolerance: 0.05}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid target rejected: %v", err)
	}
	if err := (Target{Tolerance: 0.05}).Validate(); err == nil {
		t.Error("empty target accepted")
	}
	if err := (Target{SCThroughput: units.GBps, Tolerance: 0}).Validate(); err == nil {
		t.Error("zero tolerance accepted")
	}
	if err := (Target{SCThroughput: units.GBps, Tolerance: 1.5}).Validate(); err == nil {
		t.Error("huge tolerance accepted")
	}
}

func TestTuneLLCBandwidthRecoversPerturbation(t *testing.T) {
	cfg, scRef, _ := reference(t)
	p := microbench.TestParams()

	perturbed := cfg
	perturbed.GPU.LLCBandwidth = cfg.GPU.LLCBandwidth * 2.5
	fitted, err := TuneLLCBandwidth(context.Background(), perturbed, p, scRef, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	got, err := measureSC(context.Background(), SerialMB1, fitted, p)
	if err != nil {
		t.Fatal(err)
	}
	rel := (float64(got) - float64(scRef)) / float64(scRef)
	if rel < -0.04 || rel > 0.04 {
		t.Errorf("fitted SC throughput %.2f GB/s misses reference %.2f GB/s by %.1f%%",
			got.GB(), scRef.GB(), rel*100)
	}
}

func TestTunePinnedBandwidthRecoversPerturbation(t *testing.T) {
	cfg, _, zcRef := reference(t)
	p := microbench.TestParams()

	perturbed := cfg
	perturbed.PinnedBandwidth = cfg.PinnedBandwidth * 3
	fitted, err := TunePinnedBandwidth(context.Background(), perturbed, p, zcRef, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	got, err := measureZC(context.Background(), SerialMB1, fitted, p)
	if err != nil {
		t.Fatal(err)
	}
	rel := (float64(got) - float64(zcRef)) / float64(zcRef)
	if rel < -0.04 || rel > 0.04 {
		t.Errorf("fitted ZC throughput %.2f GB/s misses reference %.2f GB/s by %.1f%%",
			got.GB(), zcRef.GB(), rel*100)
	}
}

func TestTuneRejectsUnreachableTarget(t *testing.T) {
	cfg, _, _ := reference(t)
	p := microbench.TestParams()
	// At test scale the kernel cannot possibly reach 10 TB/s no matter how
	// fast the LLC is (compute binds first).
	if _, err := TuneLLCBandwidth(context.Background(), cfg, p, 10000*units.GBps, 0.05); err == nil {
		t.Error("unreachable target accepted")
	}
	if _, err := TuneLLCBandwidth(context.Background(), cfg, p, 0, 0.05); err == nil {
		t.Error("zero target accepted")
	}
	if _, err := TunePinnedBandwidth(context.Background(), cfg, p, 0, 0.05); err == nil {
		t.Error("zero pinned target accepted")
	}
}

func TestVerify(t *testing.T) {
	cfg, scRef, zcRef := reference(t)
	p := microbench.TestParams()
	if err := Verify(context.Background(), cfg, p, Target{SCThroughput: scRef, ZCThroughput: zcRef, Tolerance: 0.02}); err != nil {
		t.Errorf("stock config fails its own reference: %v", err)
	}
	if err := Verify(context.Background(), cfg, p, Target{SCThroughput: scRef * 2, Tolerance: 0.02}); err == nil {
		t.Error("doubled target verified")
	}
	if err := Verify(context.Background(), cfg, p, Target{}); err == nil {
		t.Error("invalid target verified")
	}
}

func TestVerifyCoherentPath(t *testing.T) {
	// The Xavier catalog must reproduce its Table-I ZC value through the
	// I/O-coherent port at full scale — the actual calibration claim.
	if testing.Short() {
		t.Skip("full-scale calibration check")
	}
	err := Verify(context.Background(), devices.Xavier(), microbench.DefaultParams(), Target{
		SCThroughput: 214.64 * units.GBps,
		ZCThroughput: 32.29 * units.GBps,
		Tolerance:    0.07,
	})
	if err != nil {
		t.Error(err)
	}
}

func TestVerifyTX2FullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale calibration check")
	}
	err := Verify(context.Background(), devices.TX2(), microbench.DefaultParams(), Target{
		SCThroughput: 97.34 * units.GBps,
		ZCThroughput: 1.28 * units.GBps,
		Tolerance:    0.07,
	})
	if err != nil {
		t.Error(err)
	}
}
