// Package stream analyzes a workload as a continuous real-time pipeline —
// the deployment the paper motivates (camera- and sensor-driven edge
// applications, §I): frames arrive at a fixed rate, each must be processed
// before its deadline, and the communication model determines whether the
// platform keeps up. This is what "the Nano does not allow satisfying the
// real-time constraints" (§IV-C) means quantitatively.
//
// The model is a deterministic single-server queue: the per-frame service
// time comes from one measured run under the chosen communication model;
// arrivals are strictly periodic; frames queue FIFO when the pipeline falls
// behind.
package stream

import (
	"fmt"

	"igpucomm/internal/comm"
	"igpucomm/internal/soc"
	"igpucomm/internal/units"
)

// Config describes the streaming deployment.
type Config struct {
	// RateHz is the arrival rate (camera frame rate, AO loop rate).
	RateHz float64
	// Frames is how many arrivals to simulate.
	Frames int
	// Deadline is the per-frame completion budget; 0 means one period.
	Deadline units.Latency
}

// Validate reports configuration problems.
func (c Config) Validate() error {
	if c.RateHz <= 0 {
		return fmt.Errorf("stream: rate %v must be positive", c.RateHz)
	}
	if c.Frames <= 0 {
		return fmt.Errorf("stream: frame count %d must be positive", c.Frames)
	}
	if c.Deadline < 0 {
		return fmt.Errorf("stream: negative deadline")
	}
	return nil
}

// Period is the inter-arrival time.
func (c Config) Period() units.Latency {
	return units.Latency(1e9 / c.RateHz)
}

// deadline resolves the effective per-frame budget.
func (c Config) deadline() units.Latency {
	if c.Deadline > 0 {
		return c.Deadline
	}
	return c.Period()
}

// Stats is the streaming verdict for one (platform, model) pair.
type Stats struct {
	Platform string
	Model    string
	Workload string

	// Service is the steady-state per-frame processing time.
	Service units.Latency
	// Utilization is Service / Period; above 1.0 the backlog grows without
	// bound.
	Utilization float64
	// Sustainable reports whether the pipeline keeps up indefinitely.
	Sustainable bool
	// DeadlineMisses counts frames completing after their budget, over the
	// simulated horizon.
	DeadlineMisses int
	// MaxLatency is the worst arrival-to-completion latency observed.
	MaxLatency units.Latency
	// EnergyPerSecond is the average power draw while streaming at the
	// configured rate (idle gaps draw static power only).
	EnergyPerSecond float64
}

// Run measures the workload under the model and plays the arrival schedule.
func Run(s *soc.SoC, w comm.Workload, m comm.Model, cfg Config) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	if m == nil {
		return Stats{}, fmt.Errorf("stream: nil model")
	}
	rep, err := m.Run(s, w)
	if err != nil {
		return Stats{}, fmt.Errorf("stream: %w", err)
	}
	st := FromReport(rep, cfg)
	st.EnergyPerSecond = powerAtRate(s, rep, cfg)
	return st, nil
}

// FromReport derives the streaming statistics from an existing measured run.
func FromReport(rep comm.Report, cfg Config) Stats {
	period := cfg.Period()
	deadline := cfg.deadline()
	service := rep.Total

	st := Stats{
		Platform:    rep.Platform,
		Model:       rep.Model,
		Workload:    rep.Workload,
		Service:     service,
		Utilization: float64(service) / float64(period),
		Sustainable: service <= period,
	}

	// Deterministic FIFO queue over the horizon.
	var done units.Latency
	for i := 0; i < cfg.Frames; i++ {
		arrival := units.Latency(float64(i) * float64(period))
		start := arrival
		if done > start {
			start = done
		}
		done = start + service
		latency := done - arrival
		if latency > st.MaxLatency {
			st.MaxLatency = latency
		}
		if latency > deadline {
			st.DeadlineMisses++
		}
	}
	return st
}

// powerAtRate averages the per-frame energy over the arrival period: the
// frame's activity energy plus static draw during any idle remainder.
func powerAtRate(s *soc.SoC, rep comm.Report, cfg Config) float64 {
	period := cfg.Period()
	frameJ := s.Config().Power.Joules(rep.Energy)
	idle := period - rep.Total
	if idle > 0 {
		frameJ += s.Config().Power.StaticWatts * idle.Seconds()
	}
	effective := period
	if rep.Total > period {
		effective = rep.Total // saturated: frames back to back
	}
	return frameJ / effective.Seconds()
}

// Compare runs the workload under several models and returns the stats in
// model order.
func Compare(s *soc.SoC, w comm.Workload, models []comm.Model, cfg Config) ([]Stats, error) {
	out := make([]Stats, 0, len(models))
	for _, m := range models {
		st, err := Run(s, w, m, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}
