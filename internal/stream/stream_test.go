package stream

import (
	"math"
	"testing"
	"testing/quick"

	"igpucomm/internal/comm"
	"igpucomm/internal/cpu"
	"igpucomm/internal/devices"
	"igpucomm/internal/gpu"
	"igpucomm/internal/isa"
	"igpucomm/internal/units"
)

func testWorkload(n int64) comm.Workload {
	return comm.Workload{
		Name: "streamtest",
		In:   []comm.BufferSpec{{Name: "in", Size: n * 4}},
		Out:  []comm.BufferSpec{{Name: "out", Size: n * 4}},
		CPUTask: func(c *cpu.CPU, lay comm.Layout) {
			base := lay.Addr("in")
			for i := int64(0); i < n; i += 16 {
				c.Store(base+i*4, 4)
			}
		},
		MakeKernel: func(lay comm.Layout, _ int) gpu.Kernel {
			in, out := lay.Addr("in"), lay.Addr("out")
			return gpu.Kernel{Name: "k", Threads: int(n), Program: func(tid int, p *isa.Program) {
				p.Ld(in+int64(tid)*4, 4)
				p.Compute(isa.FMA, 16)
				p.St(out+int64(tid)*4, 4)
			}}
		},
		Warmup: 1,
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{RateHz: 30, Frames: 100}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for name, c := range map[string]Config{
		"zero rate":    {RateHz: 0, Frames: 10},
		"neg rate":     {RateHz: -1, Frames: 10},
		"zero frames":  {RateHz: 30, Frames: 0},
		"neg deadline": {RateHz: 30, Frames: 10, Deadline: -1},
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if got := (Config{RateHz: 30, Frames: 1}).Period(); math.Abs(float64(got)-1e9/30) > 1 {
		t.Errorf("period = %v", got)
	}
}

func TestSustainablePipeline(t *testing.T) {
	// Service well below the period: no misses, latency == service.
	rep := comm.Report{Platform: "p", Model: "sc", Workload: "w", Total: 1e6} // 1ms
	st := FromReport(rep, Config{RateHz: 100, Frames: 50})                    // 10ms period
	if !st.Sustainable {
		t.Error("1ms service at 100Hz should be sustainable")
	}
	if st.DeadlineMisses != 0 {
		t.Errorf("misses = %d, want 0", st.DeadlineMisses)
	}
	if st.MaxLatency != rep.Total {
		t.Errorf("max latency = %v, want service time %v", st.MaxLatency, rep.Total)
	}
	if math.Abs(st.Utilization-0.1) > 1e-9 {
		t.Errorf("utilization = %v, want 0.1", st.Utilization)
	}
}

func TestSaturatedPipelineBacklogGrows(t *testing.T) {
	// Service 2x the period: every frame after the first misses, and the
	// worst latency grows linearly with the horizon.
	rep := comm.Report{Total: 2e6} // 2ms
	st := FromReport(rep, Config{RateHz: 1000, Frames: 100})
	if st.Sustainable {
		t.Error("2ms service at 1kHz cannot be sustainable")
	}
	if st.Utilization < 1.9 {
		t.Errorf("utilization = %v, want ~2", st.Utilization)
	}
	if st.DeadlineMisses < 99 {
		t.Errorf("misses = %d, want nearly all", st.DeadlineMisses)
	}
	// After n frames the backlog is (n-1)*(service-period)+service.
	want := units.Latency(99*(2e6-1e6) + 2e6)
	if st.MaxLatency != want {
		t.Errorf("max latency = %v, want %v", st.MaxLatency, want)
	}
}

func TestCustomDeadlineTighterThanPeriod(t *testing.T) {
	rep := comm.Report{Total: 5e5} // 0.5ms
	st := FromReport(rep, Config{RateHz: 100, Frames: 10, Deadline: 4e5})
	if st.DeadlineMisses != 10 {
		t.Errorf("misses = %d, want all 10 (budget below service)", st.DeadlineMisses)
	}
	if !st.Sustainable {
		t.Error("pipeline is sustainable even while missing tight deadlines")
	}
}

func TestRunAndCompareOnSimulatedBoard(t *testing.T) {
	s, err := devices.NewSoC(devices.XavierName)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Compare(s, testWorkload(1<<14), comm.Models(), Config{RateHz: 1000, Frames: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("stats = %d, want 3", len(stats))
	}
	for _, st := range stats {
		if st.Service <= 0 {
			t.Errorf("%s: missing service time", st.Model)
		}
		if st.EnergyPerSecond <= 0 {
			t.Errorf("%s: missing power", st.Model)
		}
		if st.Platform != devices.XavierName {
			t.Errorf("%s: platform %q", st.Model, st.Platform)
		}
	}
	// ZC drops copies: its power should not exceed SC's at the same rate.
	var scPower, zcPower float64
	for _, st := range stats {
		switch st.Model {
		case "sc":
			scPower = st.EnergyPerSecond
		case "zc":
			zcPower = st.EnergyPerSecond
		}
	}
	if zcPower > scPower {
		t.Errorf("ZC power %v above SC %v on the coherent board", zcPower, scPower)
	}
}

func TestRunErrors(t *testing.T) {
	s, _ := devices.NewSoC(devices.TX2Name)
	if _, err := Run(s, testWorkload(1024), nil, Config{RateHz: 30, Frames: 1}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := Run(s, testWorkload(1024), comm.SC{}, Config{}); err == nil {
		t.Error("invalid config accepted")
	}
	bad := testWorkload(1024)
	bad.Name = ""
	if _, err := Run(s, bad, comm.SC{}, Config{RateHz: 30, Frames: 1}); err == nil {
		t.Error("invalid workload accepted")
	}
}

// Property: utilization <= 1 implies zero deadline misses at the default
// deadline, and the max latency never exceeds service + total backlog.
func TestPropertyQueueSoundness(t *testing.T) {
	f := func(serviceUS, periodUS uint16, frames8 uint8) bool {
		service := units.Latency(serviceUS%5000+1) * 1000
		period := units.Latency(periodUS%5000+1) * 1000
		frames := int(frames8%64) + 1
		rep := comm.Report{Total: service}
		cfg := Config{RateHz: 1e9 / float64(period), Frames: frames}
		st := FromReport(rep, cfg)
		if service <= period && st.DeadlineMisses != 0 {
			return false
		}
		bound := units.Latency(float64(frames)) * service
		return st.MaxLatency >= service && st.MaxLatency <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
