// Package coherence models how a CPU-iGPU SoC keeps the shared memory
// coherent under each communication model:
//
//   - Software coherence (standard copy): caches are flushed/invalidated
//     around each kernel launch. The cost lives in the CPU and GPU models'
//     Flush operations; this package provides the protocol object that
//     sequences them.
//
//   - Hardware I/O coherence (Jetson AGX Xavier): the iGPU's pinned-path
//     requests snoop the CPU's LLC directly. IOPort implements that route:
//     it forwards GPU requests into the CPU cache hierarchy with an
//     interconnect latency adder, so the GPU observes CPU-LLC-speed data
//     instead of uncached DRAM — the reason ZC remains usable on Xavier
//     (Table I: 32.29 GB/s vs TX2's 1.28 GB/s).
//
//   - No coherence support (Jetson Nano, TX2): pinned buffers are mapped
//     uncacheable on both sides; there is nothing to model here beyond the
//     uncached ports in internal/memdev.
package coherence

import (
	"fmt"

	"igpucomm/internal/cache"
	"igpucomm/internal/memdev"
	"igpucomm/internal/units"
)

// IOPort routes device (GPU) memory requests through the CPU's LLC, the way
// hardware I/O coherence does. It satisfies gpu.MemPath.
type IOPort struct {
	name    string
	target  cache.Level   // the CPU LLC
	extra   units.Latency // interconnect hop cost per request
	stats   memdev.Stats
	enabled bool
}

// NewIOPort builds the coherence port. target is the CPU LLC; extra is the
// per-request interconnect latency. Panics on nil target or negative latency
// (static wiring errors).
func NewIOPort(name string, target cache.Level, extra units.Latency) *IOPort {
	if target == nil {
		panic(fmt.Sprintf("ioport %s: nil target", name))
	}
	if extra < 0 {
		panic(fmt.Sprintf("ioport %s: negative latency", name))
	}
	return &IOPort{name: name, target: target, extra: extra, enabled: true}
}

// Name returns the port name.
func (p *IOPort) Name() string { return p.name }

// Enabled reports whether coherence routing is active (ablation hook).
func (p *IOPort) Enabled() bool { return p.enabled }

// SetEnabled toggles the port for ablation studies. A disabled port panics on
// use — the SoC wiring must substitute an uncached path instead, which is
// what "Xavier without I/O coherence" means physically.
func (p *IOPort) SetEnabled(on bool) { p.enabled = on }

// Do forwards the request into the CPU hierarchy with the interconnect
// latency added.
func (p *IOPort) Do(a cache.Access) cache.Result {
	if !p.enabled {
		panic(fmt.Sprintf("ioport %s: used while disabled", p.name))
	}
	if a.Size <= 0 {
		return cache.Result{}
	}
	switch a.Kind {
	case cache.Read:
		p.stats.Reads++
		p.stats.BytesRead += a.Size
	case cache.Write:
		p.stats.Writes++
		p.stats.BytesWritten += a.Size
	case cache.Writeback:
		p.stats.Writebacks++
		p.stats.BytesWritten += a.Size
	}
	r := p.target.Do(a)
	r.Latency += p.extra
	r.ServedBy = p.name + "→" + r.ServedBy
	return r
}

// DoBatch services an ordered group of accesses through the CPU hierarchy's
// batch path. Latencies, counters and cache state are byte-identical to
// calling Do per access in order; the only difference is that the batch path
// does not rewrite ServedBy with the port's route prefix (the compiled GPU
// replay, its only caller, never reads ServedBy, and skipping the rewrite is
// what keeps the path allocation-free).
func (p *IOPort) DoBatch(accs []cache.Access, out []cache.Result, b *cache.Batch) {
	if !p.enabled {
		panic(fmt.Sprintf("ioport %s: used while disabled", p.name))
	}
	for i := range accs {
		a := accs[i]
		if a.Size <= 0 {
			continue
		}
		switch a.Kind {
		case cache.Read:
			p.stats.Reads++
			p.stats.BytesRead += a.Size
		case cache.Write:
			p.stats.Writes++
			p.stats.BytesWritten += a.Size
		case cache.Writeback:
			p.stats.Writebacks++
			p.stats.BytesWritten += a.Size
		}
	}
	if tc, ok := p.target.(*cache.Cache); ok {
		tc.DoBatch(accs, out, b)
	} else {
		for i := range accs {
			if accs[i].Size <= 0 {
				out[i] = cache.Result{}
				continue
			}
			out[i] = p.target.Do(accs[i])
		}
	}
	for i := range accs {
		if accs[i].Size <= 0 {
			out[i] = cache.Result{}
			continue
		}
		out[i].Latency += p.extra
	}
}

// Stats returns the traffic the port has carried.
func (p *IOPort) Stats() memdev.Stats { return p.stats }

// ResetStats zeroes the counters.
func (p *IOPort) ResetStats() { p.stats = memdev.Stats{} }

// Flusher is the cache-maintenance interface software coherence drives.
type Flusher interface {
	// FlushAll writes back + invalidates, returning lines written back.
	FlushAll() int64
}

// GPUFlusher adapts the GPU's flush signature.
type GPUFlusher interface {
	FlushLLC(perLine units.Latency) (int64, units.Latency)
}

// Software is the software-coherence protocol the standard-copy model uses:
// flush CPU caches before the kernel (so the GPU sees the data), flush GPU
// caches after (so the CPU sees the results).
type Software struct {
	CPU         Flusher
	GPU         GPUFlusher
	GPULineCost units.Latency

	// Counters for reporting.
	PreKernelFlushes  int64
	PostKernelFlushes int64
}

// PreKernel performs the CPU-side flush before a launch.
func (s *Software) PreKernel() int64 {
	s.PreKernelFlushes++
	return s.CPU.FlushAll()
}

// PostKernel performs the GPU-side flush after a launch and returns the
// writeback count and the time it costs (charged to the launch by callers).
func (s *Software) PostKernel() (int64, units.Latency) {
	s.PostKernelFlushes++
	return s.GPU.FlushLLC(s.GPULineCost)
}
