package coherence

import (
	"strings"
	"testing"

	"igpucomm/internal/cache"
	"igpucomm/internal/memdev"
	"igpucomm/internal/units"
)

func cpuLLC(t *testing.T) (*cache.Cache, *memdev.DRAM) {
	t.Helper()
	d := memdev.New(memdev.Config{Name: "dram", Latency: 150, Bandwidth: 25 * units.GBps})
	llc := cache.New(cache.Config{Name: "cpuLLC", Size: 8 * units.KiB, LineSize: 64, Ways: 4, HitLatency: 25}, d.NewPort("cpu", -1))
	return llc, d
}

func TestNewIOPortPanics(t *testing.T) {
	llc, _ := cpuLLC(t)
	for name, f := range map[string]func(){
		"nil target":  func() { NewIOPort("io", nil, 10) },
		"neg latency": func() { NewIOPort("io", llc, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			f()
		}()
	}
}

func TestIOPortSnoopsCPULLC(t *testing.T) {
	llc, _ := cpuLLC(t)
	// CPU warmed the line.
	llc.Do(cache.Access{Addr: 0, Size: 64, Kind: cache.Write})
	p := NewIOPort("io", llc, 30)
	r := p.Do(cache.Access{Addr: 0, Size: 64, Kind: cache.Read})
	// LLC hit 25 + interconnect 30.
	if r.Latency != 55 {
		t.Errorf("snoop hit latency = %v, want 55", r.Latency)
	}
	if !strings.Contains(r.ServedBy, "io") || !strings.Contains(r.ServedBy, "cpuLLC") {
		t.Errorf("served by %q, want io→cpuLLC", r.ServedBy)
	}
}

func TestIOPortMissGoesToDRAM(t *testing.T) {
	llc, d := cpuLLC(t)
	p := NewIOPort("io", llc, 30)
	r := p.Do(cache.Access{Addr: 4096, Size: 64, Kind: cache.Read})
	if r.Latency != 205 { // 25 LLC + 150 DRAM + 30 hop
		t.Errorf("miss latency = %v, want 205", r.Latency)
	}
	if d.Stats().Reads != 1 {
		t.Error("miss did not reach DRAM")
	}
}

func TestIOPortStats(t *testing.T) {
	llc, _ := cpuLLC(t)
	p := NewIOPort("io", llc, 10)
	p.Do(cache.Access{Addr: 0, Size: 64, Kind: cache.Read})
	p.Do(cache.Access{Addr: 64, Size: 64, Kind: cache.Write})
	p.Do(cache.Access{Addr: 128, Size: 64, Kind: cache.Writeback})
	st := p.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.Writebacks != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.BytesRead != 64 || st.BytesWritten != 128 {
		t.Errorf("bytes = %d/%d, want 64/128", st.BytesRead, st.BytesWritten)
	}
	p.ResetStats()
	if p.Stats() != (memdev.Stats{}) {
		t.Error("stats survived reset")
	}
}

func TestIOPortDegenerateAccess(t *testing.T) {
	llc, _ := cpuLLC(t)
	p := NewIOPort("io", llc, 10)
	if r := p.Do(cache.Access{Size: 0}); r.Latency != 0 {
		t.Error("zero-size access did work")
	}
}

func TestIOPortDisabledPanics(t *testing.T) {
	llc, _ := cpuLLC(t)
	p := NewIOPort("io", llc, 10)
	p.SetEnabled(false)
	if p.Enabled() {
		t.Fatal("SetEnabled(false) ignored")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("disabled port serviced a request")
		}
	}()
	p.Do(cache.Access{Addr: 0, Size: 4, Kind: cache.Read})
}

type fakeCPUFlusher struct{ calls, ret int64 }

func (f *fakeCPUFlusher) FlushAll() int64 { f.calls++; return f.ret }

type fakeGPUFlusher struct {
	calls int64
	wbs   int64
	cost  units.Latency
}

func (f *fakeGPUFlusher) FlushLLC(per units.Latency) (int64, units.Latency) {
	f.calls++
	return f.wbs, f.cost
}

func TestSoftwareProtocolSequencing(t *testing.T) {
	cf := &fakeCPUFlusher{ret: 7}
	gf := &fakeGPUFlusher{wbs: 3, cost: 42}
	sw := &Software{CPU: cf, GPU: gf, GPULineCost: 2}
	if got := sw.PreKernel(); got != 7 {
		t.Errorf("PreKernel = %d, want 7", got)
	}
	wbs, cost := sw.PostKernel()
	if wbs != 3 || cost != 42 {
		t.Errorf("PostKernel = %d/%v, want 3/42", wbs, cost)
	}
	if cf.calls != 1 || gf.calls != 1 {
		t.Error("flushers not called exactly once")
	}
	if sw.PreKernelFlushes != 1 || sw.PostKernelFlushes != 1 {
		t.Error("protocol counters wrong")
	}
}
