// Package simnet is the deterministic-simulation substrate under the DST
// harness (internal/dst): a Clock interface threaded through every
// time-dependent path in the engine, advisord, the client and the fleet
// router, with a wall-clock implementation for production and a virtual
// implementation (Sim) whose timers fire in deterministic heap order; plus
// an in-memory HTTP transport (Network) that routes requests between
// in-process advisord shards under a seeded schedule of link faults.
//
// The design rule that makes simulation sound: production code never calls
// the time package directly in the simulated packages (the igpulint
// timesource analyzer enforces this) — it asks the injected Clock. Under
// Real() the program behaves exactly as before; under a Sim the same program
// runs in virtual time, so a three-second retry storm replays in
// microseconds and every failure is a seed away from being reproduced.
package simnet

import (
	"context"
	"time"
)

// Clock is an injectable time source. Production code in the simulated
// packages must route every wait and every timestamp through it.
type Clock interface {
	// Now returns the current instant of this clock.
	Now() time.Time
	// Since returns the clock time elapsed since t.
	Since(t time.Time) time.Duration
	// Sleep blocks for d of this clock's time, returning early with
	// ctx.Err() when the context ends mid-sleep. d <= 0 returns
	// immediately (after a context check).
	Sleep(ctx context.Context, d time.Duration) error
	// After returns a channel that delivers the clock's time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
	// NewTimer returns a timer that delivers on C() once d has elapsed.
	NewTimer(d time.Duration) Timer
	// AfterFunc runs fn once d has elapsed. Under a Sim, fn runs on the
	// goroutine advancing the clock.
	AfterFunc(d time.Duration, fn func()) Timer
	// WithTimeout derives a context that expires with
	// context.DeadlineExceeded after d of this clock's time.
	WithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc)
}

// Timer is the subset of *time.Timer the simulated paths need.
type Timer interface {
	// C delivers the clock's time when the timer fires.
	C() <-chan time.Time
	// Stop cancels the timer, reporting whether it was still pending.
	Stop() bool
}

// Real returns the wall-clock Clock production code runs under.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) Since(t time.Time) time.Duration        { return time.Since(t) }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (realClock) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

func (realClock) AfterFunc(d time.Duration, fn func()) Timer {
	return realTimer{time.AfterFunc(d, fn)}
}

func (realClock) WithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(parent, d)
}

type realTimer struct{ t *time.Timer }

func (r realTimer) C() <-chan time.Time { return r.t.C }
func (r realTimer) Stop() bool          { return r.t.Stop() }
