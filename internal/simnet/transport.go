package simnet

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"
)

// Network routes HTTP requests between in-process servers by host name,
// entirely in memory: a handler runs inline on the calling goroutine (via
// httptest.NewRecorder), so no listener, no real sockets and — crucially
// for determinism — no scheduler-dependent interleaving. Link behavior is
// programmable per directed (source, host) pair: probabilistic request
// drops, response losses (the handler runs but the caller sees a network
// error — a one-way link), duplicate deliveries, added virtual latency,
// directional partitions and host crashes.
//
// All probabilistic decisions draw from one seeded stream in call order, so
// a sequential workload replays identically for a given seed. Safe for
// concurrent use, but determinism is only guaranteed for sequential
// callers.
type Network struct {
	clock Clock

	mu     sync.Mutex
	rng    *rand.Rand
	hosts  map[string]http.Handler
	down   map[string]bool
	cut    map[link]bool
	faults map[link]LinkFault

	delivered int
	dropped   int
	respLost  int
	dupes     int
}

// link is a directed (source, destination-host) pair; "*" matches any.
type link struct{ from, to string }

// LinkFault is the programmable fault profile of one directed link.
type LinkFault struct {
	// DropProb is the probability the request is lost before reaching the
	// handler.
	DropProb float64
	// RespLossProb is the probability the handler runs but its response is
	// lost — the one-way-link case: server-side effects (cache installs,
	// admission counters) happen, the caller sees a network error and
	// retries.
	RespLossProb float64
	// DupProb is the probability the request is delivered twice (the
	// caller sees the second response).
	DupProb float64
	// Delay is virtual latency added before delivery.
	Delay time.Duration
}

// NewNetwork builds a network on the given clock with a seeded fault
// stream.
func NewNetwork(clock Clock, seed int64) *Network {
	return &Network{
		clock:  clock,
		rng:    rand.New(rand.NewSource(seed)),
		hosts:  make(map[string]http.Handler),
		down:   make(map[string]bool),
		cut:    make(map[link]bool),
		faults: make(map[link]LinkFault),
	}
}

// Register installs (or replaces — a restart) the handler serving host.
func (n *Network) Register(host string, h http.Handler) {
	n.mu.Lock()
	n.hosts[host] = h
	n.mu.Unlock()
}

// SetDown marks a host crashed (every delivery fails with a connection
// error) or back up.
func (n *Network) SetDown(host string, down bool) {
	n.mu.Lock()
	n.down[host] = down
	n.mu.Unlock()
}

// SetCut opens (or heals) a directional partition from source to host.
// Either side may be "*".
func (n *Network) SetCut(from, to string, cut bool) {
	n.mu.Lock()
	if cut {
		n.cut[link{from, to}] = true
	} else {
		delete(n.cut, link{from, to})
	}
	n.mu.Unlock()
}

// SetLinkFault installs a fault profile on a directed link; a zero
// LinkFault clears it. Either side may be "*"; the most specific match
// wins: (from,to), (from,*), (*,to), (*,*).
func (n *Network) SetLinkFault(from, to string, f LinkFault) {
	n.mu.Lock()
	if f == (LinkFault{}) {
		delete(n.faults, link{from, to})
	} else {
		n.faults[link{from, to}] = f
	}
	n.mu.Unlock()
}

// Stats returns delivery counters: delivered, dropped (request lost or
// host down/partitioned), response-lost, duplicated.
func (n *Network) Stats() (delivered, dropped, respLost, dupes int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.delivered, n.dropped, n.respLost, n.dupes
}

// Client returns an http.Client whose requests originate from source —
// the name directional partitions and link faults key on.
func (n *Network) Client(source string) *http.Client {
	return &http.Client{Transport: &transport{n: n, source: source}}
}

// plan is the fate one delivery draws from the seeded stream.
type plan struct {
	refuse   bool // host down or unregistered
	cutOff   bool // directional partition on the request path
	respCut  bool // directional partition on the response path
	drop     bool
	respLoss bool
	dup      bool
	delay    time.Duration
}

// decide draws one delivery's fate. Randomness is consumed in a fixed
// order regardless of which fault (if any) applies, so toggling one
// probability does not shift the stream the others see.
func (n *Network) decide(from, to string) (http.Handler, plan) {
	n.mu.Lock()
	defer n.mu.Unlock()
	var p plan
	h := n.hosts[to]
	if h == nil || n.down[to] {
		p.refuse = true
	}
	if n.cut[link{from, to}] || n.cut[link{from, "*"}] || n.cut[link{"*", to}] || n.cut[link{"*", "*"}] {
		p.cutOff = true
	}
	// A partition in the reverse direction lets the request through but
	// eats the response — the handler runs, the caller times out. This is
	// what makes directional partitions meaningfully different from drops.
	if n.cut[link{to, from}] || n.cut[link{to, "*"}] || n.cut[link{"*", from}] {
		p.respCut = true
	}
	f, ok := n.faults[link{from, to}]
	if !ok {
		if f, ok = n.faults[link{from, "*"}]; !ok {
			if f, ok = n.faults[link{"*", to}]; !ok {
				f = n.faults[link{"*", "*"}]
			}
		}
	}
	if f != (LinkFault{}) {
		p.drop = f.DropProb > 0 && n.rng.Float64() < f.DropProb
		p.respLoss = f.RespLossProb > 0 && n.rng.Float64() < f.RespLossProb
		p.dup = f.DupProb > 0 && n.rng.Float64() < f.DupProb
		p.delay = f.Delay
	}
	return h, p
}

// transport is the per-source http.RoundTripper.
type transport struct {
	n      *Network
	source string
}

// RoundTrip delivers one request under the link's fault profile. Handler
// execution is inline on the calling goroutine.
func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	n := t.n
	host := req.URL.Host
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("simnet: read request body: %w", err)
		}
	}
	h, p := n.decide(t.source, host)
	if p.delay > 0 {
		if err := n.clock.Sleep(req.Context(), p.delay); err != nil {
			return nil, fmt.Errorf("simnet: %s -> %s: %w", t.source, host, err)
		}
	}
	count := func(c *int) {
		n.mu.Lock()
		*c++
		n.mu.Unlock()
	}
	switch {
	case p.refuse:
		count(&n.dropped)
		return nil, fmt.Errorf("simnet: connect %s -> %s: connection refused", t.source, host)
	case p.cutOff:
		count(&n.dropped)
		return nil, fmt.Errorf("simnet: %s -> %s: network partitioned", t.source, host)
	case p.drop:
		count(&n.dropped)
		return nil, fmt.Errorf("simnet: %s -> %s: request lost", t.source, host)
	}
	serve := func() *httptest.ResponseRecorder {
		r2 := req.Clone(req.Context())
		r2.Body = io.NopCloser(bytes.NewReader(body))
		r2.RequestURI = ""
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, r2)
		return rec
	}
	rec := serve()
	if p.dup {
		count(&n.dupes)
		rec = serve()
	}
	if p.respCut {
		count(&n.respLost)
		return nil, fmt.Errorf("simnet: %s -> %s: response partitioned", host, t.source)
	}
	if p.respLoss {
		count(&n.respLost)
		return nil, fmt.Errorf("simnet: %s -> %s: response lost", t.source, host)
	}
	count(&n.delivered)
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}
