package simnet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"
)

func TestSimAdvanceFiresInDeadlineThenCreationOrder(t *testing.T) {
	s := NewSim()
	var got []string
	// Same deadline: creation order must break the tie. Earlier deadline
	// fires first regardless of creation order.
	s.AfterFunc(20*time.Millisecond, func() { got = append(got, "b1") })
	s.AfterFunc(20*time.Millisecond, func() { got = append(got, "b2") })
	s.AfterFunc(10*time.Millisecond, func() { got = append(got, "a") })
	s.Advance(50 * time.Millisecond)
	want := []string{"a", "b1", "b2"}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
	if elapsed := s.Since(Epoch); elapsed != 50*time.Millisecond {
		t.Fatalf("elapsed %v, want 50ms", elapsed)
	}
}

func TestSimTimerStop(t *testing.T) {
	s := NewSim()
	fired := false
	tm := s.AfterFunc(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	s.Advance(2 * time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestSimAutoAdvanceSleepDrivesOtherTimers(t *testing.T) {
	s := NewSim().AutoAdvance(true)
	var fired []time.Duration
	s.AfterFunc(10*time.Millisecond, func() { fired = append(fired, s.Since(Epoch)) })
	s.AfterFunc(30*time.Millisecond, func() { fired = append(fired, s.Since(Epoch)) })
	if err := s.Sleep(context.Background(), 20*time.Millisecond); err != nil {
		t.Fatalf("Sleep: %v", err)
	}
	// The 10ms timer fired on the way; the 30ms one is still pending and
	// virtual time stopped exactly at our deadline.
	if len(fired) != 1 || fired[0] != 10*time.Millisecond {
		t.Fatalf("fired %v, want [10ms]", fired)
	}
	if elapsed := s.Since(Epoch); elapsed != 20*time.Millisecond {
		t.Fatalf("elapsed %v, want 20ms", elapsed)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending %d, want 1", s.Pending())
	}
}

func TestSimWithTimeoutExpiresAsDeadlineExceeded(t *testing.T) {
	s := NewSim().AutoAdvance(true)
	ctx, cancel := s.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	if dl, ok := ctx.Deadline(); !ok || !dl.Equal(Epoch.Add(15*time.Millisecond)) {
		t.Fatalf("deadline %v ok=%v", dl, ok)
	}
	// Sleeping past the deadline must interrupt the sleep with the
	// standard sentinel, exactly as context.WithTimeout would.
	err := s.Sleep(ctx, time.Second)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Sleep returned %v, want DeadlineExceeded", err)
	}
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Fatalf("ctx.Err() = %v, want DeadlineExceeded", ctx.Err())
	}
	if elapsed := s.Since(Epoch); elapsed != 15*time.Millisecond {
		t.Fatalf("elapsed %v, want 15ms", elapsed)
	}
}

func TestSimWithTimeoutCancelReleasesTimer(t *testing.T) {
	s := NewSim()
	ctx, cancel := s.WithTimeout(context.Background(), time.Second)
	cancel()
	if !errors.Is(ctx.Err(), context.Canceled) {
		t.Fatalf("ctx.Err() = %v, want Canceled", ctx.Err())
	}
	if s.Pending() != 0 {
		t.Fatalf("pending %d after cancel, want 0", s.Pending())
	}
}

func TestRealClockSleepHonorsContext(t *testing.T) {
	c := Real()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep = %v, want Canceled", err)
	}
}

// echoHandler answers with the body it received plus a counter, so tests
// can observe duplicate deliveries and response losses server-side.
type echoHandler struct{ calls int }

func (h *echoHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.calls++
	body, _ := io.ReadAll(r.Body)
	fmt.Fprintf(w, "%s#%d", body, h.calls)
}

func postBody(t *testing.T, hc *http.Client, url, body string) (string, error) {
	t.Helper()
	resp, err := hc.Post(url, "text/plain", bytes.NewReader([]byte(body)))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

func TestNetworkRoutesAndCounts(t *testing.T) {
	s := NewSim().AutoAdvance(true)
	nw := NewNetwork(s, 1)
	h := &echoHandler{}
	nw.Register("shard-a.sim", h)
	hc := nw.Client("client")

	out, err := postBody(t, hc, "http://shard-a.sim/x", "hello")
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	if out != "hello#1" {
		t.Fatalf("got %q", out)
	}

	// Unregistered host refuses.
	if _, err := postBody(t, hc, "http://nowhere.sim/x", "y"); err == nil {
		t.Fatal("post to unregistered host succeeded")
	}

	// Crash, then restart.
	nw.SetDown("shard-a.sim", true)
	if _, err := postBody(t, hc, "http://shard-a.sim/x", "y"); err == nil {
		t.Fatal("post to crashed host succeeded")
	}
	nw.SetDown("shard-a.sim", false)
	if _, err := postBody(t, hc, "http://shard-a.sim/x", "y"); err != nil {
		t.Fatalf("post after restart: %v", err)
	}

	// One-way partition: client->shard cut, shard->client fine.
	nw.SetCut("client", "shard-a.sim", true)
	if _, err := postBody(t, hc, "http://shard-a.sim/x", "y"); err == nil {
		t.Fatal("post across partition succeeded")
	}
	if _, err := postBody(t, nw.Client("shard-b"), "http://shard-a.sim/x", "y"); err != nil {
		t.Fatalf("reverse direction blocked: %v", err)
	}
	nw.SetCut("client", "shard-a.sim", false)

	delivered, dropped, _, _ := nw.Stats()
	if delivered != 3 || dropped != 3 {
		t.Fatalf("delivered=%d dropped=%d, want 3/3", delivered, dropped)
	}
}

func TestNetworkResponseLossRunsHandler(t *testing.T) {
	s := NewSim().AutoAdvance(true)
	nw := NewNetwork(s, 7)
	h := &echoHandler{}
	nw.Register("shard-a.sim", h)
	nw.SetLinkFault("client", "shard-a.sim", LinkFault{RespLossProb: 1})
	if _, err := postBody(t, nw.Client("client"), "http://shard-a.sim/x", "y"); err == nil {
		t.Fatal("response loss did not surface as an error")
	}
	if h.calls != 1 {
		t.Fatalf("handler calls = %d, want 1 (one-way link: request arrives)", h.calls)
	}
}

func TestNetworkDuplicateDelivery(t *testing.T) {
	s := NewSim().AutoAdvance(true)
	nw := NewNetwork(s, 7)
	h := &echoHandler{}
	nw.Register("shard-a.sim", h)
	nw.SetLinkFault("client", "shard-a.sim", LinkFault{DupProb: 1})
	out, err := postBody(t, nw.Client("client"), "http://shard-a.sim/x", "y")
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	if h.calls != 2 || out != "y#2" {
		t.Fatalf("calls=%d out=%q, want 2 calls and the second response", h.calls, out)
	}
}

func TestNetworkDelayAdvancesVirtualTime(t *testing.T) {
	s := NewSim().AutoAdvance(true)
	nw := NewNetwork(s, 7)
	nw.Register("shard-a.sim", &echoHandler{})
	nw.SetLinkFault("*", "*", LinkFault{Delay: 40 * time.Millisecond})
	if _, err := postBody(t, nw.Client("client"), "http://shard-a.sim/x", "y"); err != nil {
		t.Fatalf("post: %v", err)
	}
	if elapsed := s.Since(Epoch); elapsed != 40*time.Millisecond {
		t.Fatalf("elapsed %v, want 40ms", elapsed)
	}
}

func TestNetworkDeterministicForSeed(t *testing.T) {
	run := func() []bool {
		s := NewSim().AutoAdvance(true)
		nw := NewNetwork(s, 42)
		nw.Register("a.sim", &echoHandler{})
		nw.SetLinkFault("c", "a.sim", LinkFault{DropProb: 0.5})
		hc := nw.Client("c")
		var outcomes []bool
		for i := 0; i < 20; i++ {
			_, err := postBody(t, hc, "http://a.sim/x", "y")
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome %d diverged between identical seeds", i)
		}
	}
}
