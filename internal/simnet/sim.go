package simnet

import (
	"container/heap"
	"context"
	"errors"
	"sync"
	"time"
)

// Epoch is the instant a fresh Sim starts at. A fixed epoch (rather than
// wall time at construction) keeps every timestamp a simulation produces a
// pure function of the schedule, so two runs of the same seed agree on
// every time value, not just every ordering.
var Epoch = time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)

// Sim is a virtual clock: Now advances only when timers fire, and timers
// fire in deterministic order — earliest deadline first, creation order
// breaking ties. Safe for concurrent use.
//
// Two modes drive the clock forward:
//
//   - Manual: a test calls Advance(d); every timer whose deadline falls in
//     the window fires, in order, on the advancing goroutine.
//   - Auto-advance (AutoAdvance(true)): a goroutine blocked in Sleep drives
//     the clock itself, firing successive earliest-deadline timers until
//     its own deadline arrives. This is what the DST runner uses: the
//     scenario is strictly sequential, so at most one sleeper exists at a
//     time and the firing order is fully determined.
type Sim struct {
	mu   sync.Mutex
	now  time.Time
	seq  uint64
	pq   timerHeap
	auto bool
}

// NewSim builds a virtual clock at Epoch, in manual mode.
func NewSim() *Sim { return NewSimAt(Epoch) }

// NewSimAt builds a virtual clock at start, in manual mode.
func NewSimAt(start time.Time) *Sim { return &Sim{now: start} }

// AutoAdvance toggles auto-advance mode (see the type comment) and returns
// the Sim for chaining.
func (s *Sim) AutoAdvance(on bool) *Sim {
	s.mu.Lock()
	s.auto = on
	s.mu.Unlock()
	return s
}

// Now returns the current virtual instant.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Since returns the virtual time elapsed since t.
func (s *Sim) Since(t time.Time) time.Duration { return s.Now().Sub(t) }

// Pending returns the number of timers waiting to fire (tests).
func (s *Sim) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pq.Len()
}

// newTimer registers a timer d from now. Exactly one of ch-delivery
// (fn == nil) or fn-invocation happens when it fires.
func (s *Sim) newTimer(d time.Duration, fn func()) *simTimer {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := &simTimer{
		s:        s,
		deadline: s.now.Add(d),
		seq:      s.seq,
		fn:       fn,
		idx:      -1,
	}
	s.seq++
	if fn == nil {
		t.ch = make(chan time.Time, 1)
	}
	if d <= 0 {
		// Already due: deliver immediately instead of waiting for a drive.
		t.deliver(s.now)
		return t
	}
	heap.Push(&s.pq, t)
	return t
}

// NewTimer returns a timer firing d of virtual time from now.
func (s *Sim) NewTimer(d time.Duration) Timer { return s.newTimer(d, nil) }

// After returns a channel delivering the virtual time once d has elapsed.
func (s *Sim) After(d time.Duration) <-chan time.Time { return s.newTimer(d, nil).ch }

// AfterFunc runs fn once d of virtual time has elapsed, on the goroutine
// advancing the clock.
func (s *Sim) AfterFunc(d time.Duration, fn func()) Timer { return s.newTimer(d, fn) }

// fireEarliest pops and fires the earliest pending timer, advancing Now to
// its deadline. It reports false when no timer is pending.
func (s *Sim) fireEarliest() bool {
	s.mu.Lock()
	if s.pq.Len() == 0 {
		s.mu.Unlock()
		return false
	}
	t := heap.Pop(&s.pq).(*simTimer)
	t.idx = -1
	if t.deadline.After(s.now) {
		s.now = t.deadline
	}
	now := s.now
	s.mu.Unlock()
	// Fire outside the lock: an AfterFunc callback may re-enter the clock
	// (cancel a context, start another timer).
	t.fire(now)
	return true
}

// Advance moves the clock forward by d, firing every timer whose deadline
// falls inside the window, in deterministic order, on the calling
// goroutine.
func (s *Sim) Advance(d time.Duration) {
	s.mu.Lock()
	target := s.now.Add(d)
	for s.pq.Len() > 0 && !s.pq[0].deadline.After(target) {
		t := heap.Pop(&s.pq).(*simTimer)
		t.idx = -1
		if t.deadline.After(s.now) {
			s.now = t.deadline
		}
		now := s.now
		s.mu.Unlock()
		t.fire(now)
		s.mu.Lock()
	}
	if target.After(s.now) {
		s.now = target
	}
	s.mu.Unlock()
}

// Sleep blocks for d of virtual time. In auto-advance mode the sleeping
// goroutine drives the clock itself; in manual mode it blocks until an
// Advance covers its deadline. Returns early with ctx.Err() when the
// context ends first (including a virtual deadline firing mid-drive).
func (s *Sim) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	t := s.newTimer(d, nil)
	defer t.Stop()
	s.mu.Lock()
	auto := s.auto
	s.mu.Unlock()
	if auto {
		for {
			select {
			case <-t.ch:
				return nil
			default:
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			if !s.fireEarliest() {
				// Nothing pending yet our own timer has not delivered:
				// another driver raced us past it; fall through and wait.
				break
			}
		}
	}
	select {
	case <-t.ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// WithTimeout derives a context that expires with context.DeadlineExceeded
// after d of virtual time. The expiry rides an AfterFunc timer, so it takes
// effect when the clock is driven past the deadline; CancelFunc releases
// the timer without waiting for it.
func (s *Sim) WithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	base, cancel := context.WithCancelCause(parent)
	ctx := &simDeadlineCtx{Context: base, deadline: s.Now().Add(d)}
	t := s.AfterFunc(d, func() { cancel(context.DeadlineExceeded) })
	return ctx, func() {
		t.Stop()
		cancel(context.Canceled)
	}
}

// simDeadlineCtx gives a cancel-cause context the standard deadline
// surface: Deadline() reports the virtual deadline and Err() maps a
// DeadlineExceeded cause back to the sentinel, so callers'
// errors.Is(err, context.DeadlineExceeded) checks behave exactly as they
// do under context.WithTimeout.
type simDeadlineCtx struct {
	context.Context
	deadline time.Time
}

func (c *simDeadlineCtx) Deadline() (time.Time, bool) { return c.deadline, true }

func (c *simDeadlineCtx) Err() error {
	err := c.Context.Err()
	if err == nil {
		return nil
	}
	if errors.Is(context.Cause(c.Context), context.DeadlineExceeded) {
		return context.DeadlineExceeded
	}
	return err
}

// simTimer is one pending (or fired) virtual timer.
type simTimer struct {
	s        *Sim
	deadline time.Time
	seq      uint64
	idx      int // heap index; -1 when not pending
	ch       chan time.Time
	fn       func()
}

func (t *simTimer) C() <-chan time.Time { return t.ch }

// Stop cancels the timer, reporting whether it was still pending.
func (t *simTimer) Stop() bool {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	if t.idx < 0 {
		return false
	}
	heap.Remove(&t.s.pq, t.idx)
	t.idx = -1
	return true
}

// fire delivers the timer outside the clock lock.
func (t *simTimer) fire(now time.Time) {
	if t.fn != nil {
		t.fn()
		return
	}
	t.deliver(now)
}

// deliver sends on the (buffered) channel without blocking.
func (t *simTimer) deliver(now time.Time) {
	select {
	case t.ch <- now:
	default:
	}
}

// timerHeap orders timers by (deadline, seq): earliest first, creation
// order breaking ties — the deterministic firing order the DST harness
// depends on.
type timerHeap []*simTimer

func (h timerHeap) Len() int { return len(h) }

func (h timerHeap) Less(i, j int) bool {
	if !h[i].deadline.Equal(h[j].deadline) {
		return h[i].deadline.Before(h[j].deadline)
	}
	return h[i].seq < h[j].seq
}

func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *timerHeap) Push(x interface{}) {
	t := x.(*simTimer)
	t.idx = len(*h)
	*h = append(*h, t)
}

func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.idx = -1
	*h = old[:n-1]
	return t
}
