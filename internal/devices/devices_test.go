package devices

import (
	"strings"
	"testing"

	"igpucomm/internal/soc"
)

func TestAllConfigsValid(t *testing.T) {
	cfgs := All()
	if len(cfgs) != 3 {
		t.Fatalf("catalog size = %d, want 3", len(cfgs))
	}
	for _, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{NanoName, TX2Name, XavierName} {
		cfg, err := ByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if cfg.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, cfg.Name)
		}
	}
	_, err := ByName("jetson-orin")
	if err == nil || !strings.Contains(err.Error(), "unknown platform") {
		t.Errorf("unknown platform error = %v", err)
	}
}

func TestNewSoCInstantiates(t *testing.T) {
	for _, name := range []string{NanoName, TX2Name, XavierName} {
		s, err := NewSoC(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("SoC name = %q, want %q", s.Name(), name)
		}
	}
	if _, err := NewSoC("nope"); err == nil {
		t.Error("unknown platform instantiated")
	}
}

func TestOnlyXavierIsIOCoherent(t *testing.T) {
	tests := map[string]bool{NanoName: false, TX2Name: false, XavierName: true}
	for name, want := range tests {
		cfg, _ := ByName(name)
		if cfg.IOCoherent != want {
			t.Errorf("%s IOCoherent = %v, want %v", name, cfg.IOCoherent, want)
		}
	}
}

func TestPerformanceOrdering(t *testing.T) {
	nano, tx2, xavier := Nano(), TX2(), Xavier()
	if !(nano.GPU.SMs < tx2.GPU.SMs && tx2.GPU.SMs < xavier.GPU.SMs) {
		t.Error("SM counts not increasing Nano < TX2 < Xavier")
	}
	if !(nano.DRAM.Bandwidth < tx2.DRAM.Bandwidth && tx2.DRAM.Bandwidth < xavier.DRAM.Bandwidth) {
		t.Error("DRAM bandwidths not increasing")
	}
	if !(nano.GPU.LLCBandwidth < tx2.GPU.LLCBandwidth && tx2.GPU.LLCBandwidth < xavier.GPU.LLCBandwidth) {
		t.Error("GPU LLC bandwidths not increasing")
	}
	if !(nano.CopyBandwidth < tx2.CopyBandwidth && tx2.CopyBandwidth < xavier.CopyBandwidth) {
		t.Error("copy bandwidths not increasing")
	}
}

func TestZeroCopyPathGap(t *testing.T) {
	// The calibrated pinned-path/LLC throughput gap should reflect the
	// paper's Table I: ~77x on TX2, ~7x on Xavier.
	tx2 := TX2()
	gap := float64(tx2.GPU.LLCBandwidth) / float64(tx2.PinnedBandwidth)
	if gap < 60 || gap > 90 {
		t.Errorf("TX2 cached/pinned gap = %.1fx, want ~77x", gap)
	}
	xavier := Xavier()
	gap = float64(xavier.GPU.LLCBandwidth) / float64(xavier.IOBandwidth)
	if gap < 5 || gap > 9 {
		t.Errorf("Xavier cached/coherent gap = %.1fx, want ~7x", gap)
	}
}

func TestCatalogIsData(t *testing.T) {
	// Each call returns an independent value: mutating one must not leak.
	a := TX2()
	a.GPU.SMs = 99
	if TX2().GPU.SMs == 99 {
		t.Error("catalog entries share state")
	}
	var _ soc.Config = a
}
