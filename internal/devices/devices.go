// Package devices holds the calibrated platform catalogs for the three
// boards the paper evaluates: NVIDIA Jetson Nano, Jetson TX2, and Jetson AGX
// Xavier.
//
// Geometry (core counts, cache sizes, clock rates) follows the boards' public
// specifications. The sustained-bandwidth and latency parameters are
// calibrated so the simulator's micro-benchmarks land near the paper's
// measured device characterizations (Table I, Figs 3/5/6):
//
//	            GPU LLC thr (SC)   GPU pinned-path thr (ZC)    ZC CPU caching
//	TX2         ~97 GB/s            ~1.28 GB/s (uncached DRAM)  disabled
//	Xavier      ~215 GB/s           ~32.3 GB/s (I/O coherent)   enabled
//	Nano        (TX2-like shape; paper omits its Table I row)
//
// The catalogs are plain data: every mechanism they parameterize lives in the
// substrate packages.
package devices

import (
	"fmt"
	"sort"

	"igpucomm/internal/cache"
	"igpucomm/internal/cpu"
	"igpucomm/internal/energy"
	"igpucomm/internal/gpu"
	"igpucomm/internal/isa"
	"igpucomm/internal/memdev"
	"igpucomm/internal/soc"
	"igpucomm/internal/units"
)

// Names of the catalogued platforms.
const (
	NanoName   = "jetson-nano"
	TX2Name    = "jetson-tx2"
	XavierName = "jetson-agx-xavier"
	// APUName is the extrapolated x86 APU profile (see APU); it resolves
	// through ByName but stays out of All() so the paper sweeps keep their
	// three boards.
	APUName = "embedded-apu"
)

// Nano returns the Jetson Nano platform configuration: 4x Cortex-A57 @
// 1.43 GHz with a Maxwell-class 128-core iGPU (one SM), LPDDR4, no I/O
// coherence — zero-copy disables caching of pinned buffers on both sides.
func Nano() soc.Config {
	return soc.Config{
		Name:     NanoName,
		MemBytes: 4 * units.GiB,
		DRAM: memdev.Config{
			Name:      NanoName + "/dram",
			Latency:   120,
			Bandwidth: 20 * units.GBps,
		},
		CPU: cpu.Config{
			Name:          NanoName + "/cpu",
			Freq:          1.43 * units.GHz,
			L1:            cache.Config{Name: "cpuL1", Size: 32 * units.KiB, LineSize: 64, Ways: 2, HitLatency: 2.5},
			LLC:           cache.Config{Name: "cpuLLC", Size: 2 * units.MiB, LineSize: 64, Ways: 16, HitLatency: 18},
			Costs:         isa.DefaultCPUCosts(),
			FlushLineCost: 1.2,
			MemMLP:        6,
		},
		GPU: gpu.Config{
			Name:           NanoName + "/gpu",
			Freq:           921 * units.MHz,
			SMs:            1,
			WarpSize:       32,
			MaxInflight:    128,
			ResidentWarps:  32,
			L1:             cache.Config{Name: "gpuL1", Size: 32 * units.KiB, LineSize: 64, Ways: 4, HitLatency: 24}, // effective L1/tex after shmem carveout
			LLC:            cache.Config{Name: "gpuLLC", Size: 256 * units.KiB, LineSize: 64, Ways: 16, HitLatency: 90},
			LLCBandwidth:   58 * units.GBps,
			DRAMBandwidth:  17 * units.GBps,
			Costs:          isa.DefaultGPUCosts(),
			LaunchOverhead: 9000, // 9µs software launch path
		},
		IOCoherent:      false,
		PinnedLatency:   130,
		PinnedWriteLat:  22,
		PinnedBandwidth: 0.9 * units.GBps,
		CopyBandwidth:   8 * units.GBps,
		CopySetup:       10500,
		PageSize:        64 * units.KiB, // driver migrates in 64KiB chunks
		FaultLatency:    2000,
		UMKernelFactor:  1.003,
		Power: energy.PowerConfig{
			StaticWatts:    2.0,
			CPUActiveWatts: 1.5,
			GPUActiveWatts: 2.0,
			DRAMPJPerByte:  80,
			CopyPJPerByte:  45,
		},
	}
}

// TX2 returns the Jetson TX2 platform configuration: Denver2+A57 cluster @
// 2.0 GHz with a Pascal-class 256-core iGPU (two SMs), LPDDR4, no I/O
// coherence. Its pinned path is the slowest of the three boards — the
// paper's Table I measures 1.28 GB/s against 97.34 GB/s cached, the 77x gap
// that makes ZC catastrophic for cache-dependent kernels here.
func TX2() soc.Config {
	return soc.Config{
		Name:     TX2Name,
		MemBytes: 8 * units.GiB,
		DRAM: memdev.Config{
			Name:      TX2Name + "/dram",
			Latency:   100,
			Bandwidth: 40 * units.GBps,
		},
		CPU: cpu.Config{
			Name:          TX2Name + "/cpu",
			Freq:          2.0 * units.GHz,
			L1:            cache.Config{Name: "cpuL1", Size: 32 * units.KiB, LineSize: 64, Ways: 2, HitLatency: 2},
			LLC:           cache.Config{Name: "cpuLLC", Size: 2 * units.MiB, LineSize: 64, Ways: 16, HitLatency: 14},
			Costs:         isa.DefaultCPUCosts(),
			FlushLineCost: 1.0,
			MemMLP:        6,
		},
		GPU: gpu.Config{
			Name:           TX2Name + "/gpu",
			Freq:           1.3 * units.GHz,
			SMs:            2,
			WarpSize:       32,
			MaxInflight:    128,
			ResidentWarps:  32,
			L1:             cache.Config{Name: "gpuL1", Size: 32 * units.KiB, LineSize: 64, Ways: 4, HitLatency: 20}, // effective L1/tex after shmem carveout
			LLC:            cache.Config{Name: "gpuLLC", Size: 512 * units.KiB, LineSize: 64, Ways: 16, HitLatency: 70},
			LLCBandwidth:   102.5 * units.GBps,
			DRAMBandwidth:  35 * units.GBps,
			Costs:          isa.DefaultGPUCosts(),
			LaunchOverhead: 4000,
		},
		IOCoherent:      false,
		PinnedLatency:   100,
		PinnedWriteLat:  18,
		PinnedBandwidth: 1.28 * units.GBps,
		CopyBandwidth:   15 * units.GBps,
		CopySetup:       7000,
		PageSize:        64 * units.KiB,
		FaultLatency:    1500,
		UMKernelFactor:  1.011,
		Power: energy.PowerConfig{
			StaticWatts:    3.0,
			CPUActiveWatts: 2.0,
			GPUActiveWatts: 3.0,
			DRAMPJPerByte:  70,
			CopyPJPerByte:  40,
		},
	}
}

// Xavier returns the Jetson AGX Xavier platform configuration: 8x Carmel @
// 2.26 GHz with a Volta-class 512-core iGPU (eight SMs), LPDDR4x, and —
// the board's distinguishing feature — hardware I/O coherence: GPU accesses
// to pinned memory snoop the CPU LLC instead of dropping to uncached DRAM,
// and the CPU keeps caching pinned buffers. Zero-copy stays usable for a far
// wider class of workloads here.
func Xavier() soc.Config {
	return soc.Config{
		Name:     XavierName,
		MemBytes: 16 * units.GiB,
		DRAM: memdev.Config{
			Name:      XavierName + "/dram",
			Latency:   90,
			Bandwidth: 100 * units.GBps,
		},
		CPU: cpu.Config{
			Name:          XavierName + "/cpu",
			Freq:          2.26 * units.GHz,
			L1:            cache.Config{Name: "cpuL1", Size: 64 * units.KiB, LineSize: 64, Ways: 4, HitLatency: 1.8},
			LLC:           cache.Config{Name: "cpuLLC", Size: 4 * units.MiB, LineSize: 64, Ways: 16, HitLatency: 11},
			Costs:         isa.DefaultCPUCosts(),
			FlushLineCost: 0.8,
			MemMLP:        8,
		},
		GPU: gpu.Config{
			Name:           XavierName + "/gpu",
			Freq:           1.377 * units.GHz,
			SMs:            8,
			WarpSize:       32,
			MaxInflight:    128,
			ResidentWarps:  32,
			L1:             cache.Config{Name: "gpuL1", Size: 32 * units.KiB, LineSize: 64, Ways: 4, HitLatency: 19}, // effective L1/tex after shmem carveout
			LLC:            cache.Config{Name: "gpuLLC", Size: 512 * units.KiB, LineSize: 64, Ways: 16, HitLatency: 60},
			LLCBandwidth:   226 * units.GBps,
			DRAMBandwidth:  85 * units.GBps,
			Costs:          isa.DefaultGPUCosts(),
			LaunchOverhead: 2500,
		},
		IOCoherent:     true,
		PinnedLatency:  120, // only reachable through ablations (CPU stays cached)
		PinnedWriteLat: 15,
		IOHopLatency:   60,
		IOBandwidth:    32.3 * units.GBps,
		CopyBandwidth:  30 * units.GBps,
		CopySetup:      6000,
		PageSize:       64 * units.KiB,
		FaultLatency:   1000,
		UMKernelFactor: 1.08,
		Power: energy.PowerConfig{
			StaticWatts:    5.0,
			CPUActiveWatts: 4.0,
			GPUActiveWatts: 6.0,
			DRAMPJPerByte:  60,
			CopyPJPerByte:  35,
		},
	}
}

// APU returns an extrapolated x86 embedded-APU profile, the class of machine
// the paper's Jetson results are most often asked to transfer to: a truly
// unified memory system (UPM — the CPU and GPU share page tables, so unified
// memory has no migration cost at all: FaultLatency 0, kernel factor 1.0),
// hardware I/O coherence, and a large LLC shared by both sides. It is not
// part of All() — the paper's sweeps and goldens are pinned to the three
// Jetson boards — but resolves through ByName for heat-map studies of how
// advice shifts when migration is free.
func APU() soc.Config {
	return soc.Config{
		Name:     APUName,
		MemBytes: 32 * units.GiB,
		DRAM: memdev.Config{
			Name:      APUName + "/dram",
			Latency:   80,
			Bandwidth: 120 * units.GBps,
		},
		CPU: cpu.Config{
			Name:          APUName + "/cpu",
			Freq:          3.0 * units.GHz,
			L1:            cache.Config{Name: "cpuL1", Size: 32 * units.KiB, LineSize: 64, Ways: 8, HitLatency: 1.5},
			LLC:           cache.Config{Name: "cpuLLC", Size: 8 * units.MiB, LineSize: 64, Ways: 16, HitLatency: 12},
			Costs:         isa.DefaultCPUCosts(),
			FlushLineCost: 0.8,
			MemMLP:        10,
		},
		GPU: gpu.Config{
			Name:           APUName + "/gpu",
			Freq:           2.2 * units.GHz,
			SMs:            8,
			WarpSize:       32,
			MaxInflight:    128,
			ResidentWarps:  32,
			L1:             cache.Config{Name: "gpuL1", Size: 32 * units.KiB, LineSize: 64, Ways: 4, HitLatency: 18},
			LLC:            cache.Config{Name: "gpuLLC", Size: 4 * units.MiB, LineSize: 64, Ways: 16, HitLatency: 55},
			LLCBandwidth:   280 * units.GBps,
			DRAMBandwidth:  110 * units.GBps,
			Costs:          isa.DefaultGPUCosts(),
			LaunchOverhead: 2000,
		},
		IOCoherent:     true,
		PinnedLatency:  100,
		PinnedWriteLat: 12,
		IOHopLatency:   40,
		IOBandwidth:    60 * units.GBps,
		CopyBandwidth:  40 * units.GBps,
		CopySetup:      5000,
		PageSize:       64 * units.KiB,
		FaultLatency:   0, // UPM: shared page tables, no migration faults
		UMKernelFactor: 1.0,
		Power: energy.PowerConfig{
			StaticWatts:    6.0,
			CPUActiveWatts: 8.0,
			GPUActiveWatts: 10.0,
			DRAMPJPerByte:  55,
			CopyPJPerByte:  30,
		},
	}
}

// All returns every catalogued platform configuration, sorted by name.
func All() []soc.Config {
	cfgs := []soc.Config{Nano(), TX2(), Xavier()}
	sort.Slice(cfgs, func(i, j int) bool { return cfgs[i].Name < cfgs[j].Name })
	return cfgs
}

// ByName looks a platform up by its catalog name. It also resolves the
// extra-catalog APU profile, which All() deliberately omits.
func ByName(name string) (soc.Config, error) {
	for _, c := range append(All(), APU()) {
		if c.Name == name {
			return c, nil
		}
	}
	return soc.Config{}, fmt.Errorf("devices: unknown platform %q (have %s, %s, %s, %s)",
		name, NanoName, TX2Name, XavierName, APUName)
}

// NewSoC is a convenience that instantiates a platform by name.
func NewSoC(name string) (*soc.SoC, error) {
	cfg, err := ByName(name)
	if err != nil {
		return nil, err
	}
	return soc.New(cfg), nil
}
