// Package report renders the experiment results as aligned ASCII tables and
// plottable series, matching the layout of the paper's tables and figures so
// side-by-side comparison is direct.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid with a header row.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	// Note is a free-form footer (substitutions, scale factors, caveats).
	Note string
}

// AddRow appends a row; values are stringified with %v, floats with 2
// decimals.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case float32:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[minInt(i, len(widths)-1)], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// Series is a figure's data: one x column and named y columns.
type Series struct {
	Title   string
	XLabel  string
	Columns []string
	Points  [][]float64 // each row: x followed by the y values
	Note    string
}

// AddPoint appends one x plus its y values.
func (s *Series) AddPoint(x float64, ys ...float64) {
	s.Points = append(s.Points, append([]float64{x}, ys...))
}

// String renders the series as an aligned data listing (gnuplot-ready).
func (s Series) String() string {
	var b strings.Builder
	if s.Title != "" {
		fmt.Fprintf(&b, "%s\n", s.Title)
	}
	fmt.Fprintf(&b, "# %-14s", s.XLabel)
	for _, c := range s.Columns {
		fmt.Fprintf(&b, "  %14s", c)
	}
	b.WriteByte('\n')
	for _, row := range s.Points {
		for i, v := range row {
			if i == 0 {
				fmt.Fprintf(&b, "%-16.8g", v)
			} else {
				fmt.Fprintf(&b, "  %14.6g", v)
			}
		}
		b.WriteByte('\n')
	}
	if s.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", s.Note)
	}
	return b.String()
}

// PaperVsMeasured formats a comparison cell: "measured (paper X)".
func PaperVsMeasured(measured float64, paper float64, unit string) string {
	return fmt.Sprintf("%.2f%s (paper %.2f%s)", measured, unit, paper, unit)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Markdown renders the table as GitHub-flavored markdown (for dropping
// experiment results into EXPERIMENTS.md-style documents).
func (t Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "\n*%s*\n", t.Note)
	}
	return b.String()
}
