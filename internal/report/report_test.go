package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := Table{
		Title:   "Test Table",
		Headers: []string{"Board", "Value"},
		Note:    "a footnote",
	}
	tab.AddRow("tx2", 1.2345)
	tab.AddRow("xavier", float32(2.5))
	tab.AddRow("nano", "text", "extra-cell")
	out := tab.String()

	for _, want := range []string{"Test Table", "Board", "Value", "tx2", "1.23", "2.50", "note: a footnote", "extra-cell"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 3 rows + note
	if len(lines) != 7 {
		t.Errorf("rendered %d lines, want 7:\n%s", len(lines), out)
	}
	// Header and separator align.
	if !strings.HasPrefix(lines[2], "------") {
		t.Errorf("separator line missing: %q", lines[2])
	}
}

func TestTableColumnAlignment(t *testing.T) {
	tab := Table{Headers: []string{"A", "B"}}
	tab.AddRow("longer-cell", "x")
	tab.AddRow("y", "z")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// The second column must start at the same offset in both data rows.
	r1, r2 := lines[2], lines[3]
	if strings.Index(r1, "x") != strings.Index(r2, "z") {
		t.Errorf("columns misaligned:\n%q\n%q", r1, r2)
	}
}

func TestSeriesRendering(t *testing.T) {
	s := Series{
		Title:   "Sweep",
		XLabel:  "fraction",
		Columns: []string{"sc", "zc"},
		Note:    "threshold at 0.1",
	}
	s.AddPoint(0.25, 1.5, 3.0)
	s.AddPoint(0.5, 2.5, 9.0)
	out := s.String()
	for _, want := range []string{"Sweep", "# fraction", "sc", "zc", "0.25", "note: threshold"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered series missing %q:\n%s", want, out)
		}
	}
	if len(s.Points) != 2 || len(s.Points[0]) != 3 {
		t.Error("AddPoint shape wrong")
	}
}

func TestPaperVsMeasured(t *testing.T) {
	got := PaperVsMeasured(97.03, 97.34, " GB/s")
	if got != "97.03 GB/s (paper 97.34 GB/s)" {
		t.Errorf("PaperVsMeasured = %q", got)
	}
}

func TestEmptyTable(t *testing.T) {
	tab := Table{Headers: []string{"only", "headers"}}
	out := tab.String()
	if !strings.Contains(out, "only") {
		t.Error("empty table should still render headers")
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := Table{
		Title:   "MD",
		Headers: []string{"A", "B"},
		Note:    "footnote",
	}
	tab.AddRow("x|y", 1.5)
	md := tab.Markdown()
	for _, want := range []string{"**MD**", "| A | B |", "| --- | --- |", "x\\|y", "1.50", "*footnote*"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
