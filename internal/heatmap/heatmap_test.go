package heatmap

import (
	"strings"
	"testing"

	"igpucomm/internal/mmu"
)

func TestNewPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero extent":        func() { New(0, 64) },
		"negative extent":    func() { New(-1, 64) },
		"zero page":          func() { New(1<<20, 0) },
		"non-power-two page": func() { New(1<<20, 100) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		})
	}
}

func TestGeometry(t *testing.T) {
	a := New(1<<20, 4096)
	if a.PageSize() != 4096 {
		t.Errorf("PageSize = %d, want 4096", a.PageSize())
	}
	if a.Pages() != 256 {
		t.Errorf("Pages = %d, want 256", a.Pages())
	}
	// A non-multiple extent rounds the bucket count up.
	if got := New(4096+1, 4096).Pages(); got != 2 {
		t.Errorf("Pages(4097/4096) = %d, want 2", got)
	}
}

func TestRecordCounters(t *testing.T) {
	a := New(1<<20, 4096)
	a.Record(0, 64, false, false)   // read hit, page 0
	a.Record(64, 64, false, true)   // read miss, page 0
	a.Record(4096, 64, true, false) // write hit, page 1
	a.RecordWriteback(4096, 64)     // writeback, page 1

	tot := a.Totals()
	if tot.Reads != 2 || tot.Writes != 1 || tot.Misses != 1 || tot.Writebacks != 1 {
		t.Errorf("totals = %+v, want 2 reads, 1 write, 1 miss, 1 writeback", tot)
	}
	if tot.AccessedBytes != 3*64 {
		t.Errorf("AccessedBytes = %d, want %d", tot.AccessedBytes, 3*64)
	}
	// Moved = miss fill + writeback.
	if tot.MovedBytes != 2*64 {
		t.Errorf("MovedBytes = %d, want %d", tot.MovedBytes, 2*64)
	}
	if want := 1 - float64(1)/float64(3); tot.HitRate != want {
		t.Errorf("HitRate = %v, want %v", tot.HitRate, want)
	}
	if a.Clock() != 3 {
		t.Errorf("Clock = %d, want 3 (writebacks do not advance it)", a.Clock())
	}
}

func TestRecordOutOfRangeIgnored(t *testing.T) {
	a := New(1<<20, 4096)
	a.Record(1<<20, 64, false, true) // one past the extent
	a.Record(-1, 64, false, true)    // negative wraps to a huge page index
	a.RecordWriteback(1<<21, 64)
	if tot := a.Totals(); tot.Touches() != 0 || tot.Writebacks != 0 {
		t.Errorf("out-of-range records counted: %+v", tot)
	}
}

func TestReuseClock(t *testing.T) {
	a := New(1<<20, 4096)
	a.Record(0, 64, false, false) // clock 1, first touch
	a.Record(0, 64, false, false) // clock 2, reuse delta 1
	a.Record(0, 64, false, false) // clock 3, reuse delta 1
	tot := a.Totals()
	if tot.MeanReuse != 1 {
		t.Errorf("MeanReuse = %v, want 1", tot.MeanReuse)
	}

	a.Reset()
	a.Record(0, 64, false, false)    // clock 1
	a.Record(4096, 64, false, false) // clock 2, other page
	a.Record(0, 64, false, false)    // clock 3, reuse delta 2
	if tot := a.Totals(); tot.MeanReuse != 2 {
		t.Errorf("MeanReuse after interleave = %v, want 2", tot.MeanReuse)
	}
}

func TestResetClears(t *testing.T) {
	a := New(1<<20, 4096)
	a.Record(0, 64, true, true)
	a.RecordWriteback(0, 64)
	a.Reset()
	if tot := a.Totals(); tot.Touches() != 0 || tot.Writebacks != 0 || tot.MovedBytes != 0 {
		t.Errorf("Reset left counters: %+v", tot)
	}
	if a.Clock() != 0 {
		t.Errorf("Reset left clock %d", a.Clock())
	}
}

func TestSnapshotAttribution(t *testing.T) {
	a := New(1<<20, 4096)
	bufs := []mmu.Buffer{
		{Name: "hot", Addr: 0, Size: 4096, Kind: mmu.Pinned},
		{Name: "cold", Addr: 8192, Size: 8192, Kind: mmu.HostAlloc},
	}
	// 4x reuse over the hot buffer, one pass over half of the cold one.
	for i := 0; i < 4; i++ {
		for off := int64(0); off < 4096; off += 64 {
			a.Record(off, 64, false, i == 0 && off%4096 == 0)
		}
	}
	for off := int64(8192); off < 8192+4096; off += 64 {
		a.Record(off, 64, true, true)
	}

	heats := a.Snapshot(bufs)
	if len(heats) != 2 {
		t.Fatalf("snapshot has %d buffers, want 2", len(heats))
	}
	if heats[0].Name != "hot" || heats[1].Name != "cold" {
		t.Fatalf("order = %s, %s; want hot first", heats[0].Name, heats[1].Name)
	}
	hot, cold := heats[0], heats[1]
	if hot.HeatScore != 4 {
		t.Errorf("hot HeatScore = %v, want 4", hot.HeatScore)
	}
	if hot.Kind != "pinned" || cold.Kind != "host" {
		t.Errorf("kinds = %s, %s", hot.Kind, cold.Kind)
	}
	if cold.Pages != 2 || cold.TouchedPages != 1 || cold.TouchDensity != 0.5 {
		t.Errorf("cold density = %d/%d (%v), want 1/2 (0.5)",
			cold.TouchedPages, cold.Pages, cold.TouchDensity)
	}
	if cold.HitRate != 0 {
		t.Errorf("cold HitRate = %v, want 0 (all misses)", cold.HitRate)
	}
	if a.Snapshot(nil) != nil {
		t.Error("Snapshot(nil) != nil")
	}
}

func TestSnapshotTieBrokenByName(t *testing.T) {
	a := New(1<<20, 4096)
	bufs := []mmu.Buffer{
		{Name: "b", Addr: 4096, Size: 4096},
		{Name: "a", Addr: 0, Size: 4096},
	}
	heats := a.Snapshot(bufs) // no traffic: equal (zero) scores
	if heats[0].Name != "a" || heats[1].Name != "b" {
		t.Errorf("tie order = %s, %s; want a, b", heats[0].Name, heats[1].Name)
	}
}

func TestRender(t *testing.T) {
	a := New(1<<20, 4096)
	for off := int64(0); off < 4096; off += 64 {
		a.Record(off, 64, false, false)
	}
	heats := a.Snapshot([]mmu.Buffer{{Name: "buf", Addr: 0, Size: 4096, Kind: mmu.Pinned}})
	out := Render(heats)
	for _, want := range []string{"buffer", "buf", "pinned", "####"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render output missing %q:\n%s", want, out)
		}
	}
	if got := Render(nil); !strings.Contains(got, "no buffers") {
		t.Errorf("Render(nil) = %q", got)
	}
}

// TestRecordPathZeroAlloc is the perf gate on the accumulator's hot path:
// heat recording rides inside the cache simulator's per-line loop, so a
// single allocation per record would dominate the simulation.
func TestRecordPathZeroAlloc(t *testing.T) {
	a := New(1<<20, 4096)
	if n := testing.AllocsPerRun(1000, func() {
		a.Record(4096, 64, true, true)
		a.RecordWriteback(4096, 64)
	}); n != 0 {
		t.Errorf("record path allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { a.Reset() }); n != 0 {
		t.Errorf("Reset allocates %v per op, want 0", n)
	}
}
