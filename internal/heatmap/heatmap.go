// Package heatmap attributes simulated memory traffic to fixed-size page
// buckets and rolls the buckets up into per-buffer heat summaries. The
// accumulator sits behind nil-checked hooks on the cache/GPU hot path: every
// entry-level access (CPU L1, per-SM GPU L1, pinned/uncached ports) records
// one sample, so a run's address-level behaviour — which buffers are hot,
// how dense their touches are, how quickly lines are re-referenced — becomes
// visible without perturbing the simulation itself.
//
// The record path is allocation-free by construction: all counters live in
// preallocated struct-of-arrays slices sized against the platform's memory
// extent, and recording is index arithmetic plus a handful of integer adds.
package heatmap

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"igpucomm/internal/mmu"
)

// Accumulator counts per-page traffic in a struct-of-arrays layout. One page
// bucket covers pageSize bytes (the platform's migration page, 64KiB on the
// catalogued boards); the bucket count is fixed at construction from the
// address-space extent, so the record path never grows a slice.
type Accumulator struct {
	pageShift uint
	pageSize  int64
	extent    int64
	// clock counts demand records (not writebacks): the reuse summary is the
	// clock delta between consecutive demand touches of the same page, a
	// cheap stand-in for reuse distance that preserves the hot/cold ordering.
	clock int64
	// hi is the highest page index recorded since the last Reset (-1 when no
	// record has landed). Workloads touch a few MB of a multi-GiB address
	// space, so Reset clearing only [0, hi] instead of every bucket is the
	// difference between microseconds and milliseconds per model run.
	hi int64

	reads         []int64
	writes        []int64
	misses        []int64
	writebacks    []int64
	accessedBytes []int64 // bytes requested by demand records
	movedBytes    []int64 // bytes that crossed below the recording level: miss fills + writebacks + uncached traffic
	lastTouch     []int64 // clock of the page's most recent demand record (0 = never)
	reuseSum      []int64
	reuseCnt      []int64
}

// New builds an accumulator covering [0, extent) with pageSize-byte buckets.
// pageSize must be a positive power of two and extent positive, mirroring the
// cache and migrator constructors' contracts.
func New(extent, pageSize int64) *Accumulator {
	if extent <= 0 {
		panic(fmt.Sprintf("heatmap: extent %d must be positive", extent))
	}
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		panic(fmt.Sprintf("heatmap: page size %d must be a positive power of two", pageSize))
	}
	pages := (extent + pageSize - 1) / pageSize
	return &Accumulator{
		pageShift:     uint(bits.TrailingZeros64(uint64(pageSize))),
		pageSize:      pageSize,
		extent:        extent,
		hi:            -1,
		reads:         make([]int64, pages),
		writes:        make([]int64, pages),
		misses:        make([]int64, pages),
		writebacks:    make([]int64, pages),
		accessedBytes: make([]int64, pages),
		movedBytes:    make([]int64, pages),
		lastTouch:     make([]int64, pages),
		reuseSum:      make([]int64, pages),
		reuseCnt:      make([]int64, pages),
	}
}

// PageSize returns the bucket granularity.
func (a *Accumulator) PageSize() int64 { return a.pageSize }

// Pages returns the bucket count.
func (a *Accumulator) Pages() int { return len(a.reads) }

// Clock returns the number of demand records taken since the last Reset.
func (a *Accumulator) Clock() int64 { return a.clock }

// Record notes one demand access: addr/size locate the traffic, write
// distinguishes stores, miss says the access was serviced below the
// recording level (a cache miss, or inherently uncached traffic on the
// pinned path, where every access is a miss by construction).
//
//igpu:hot Record runs once per cache line on the simulator's access path; it must stay allocation-free.
func (a *Accumulator) Record(addr, size int64, write, miss bool) {
	page := uint64(addr) >> a.pageShift
	if page >= uint64(len(a.reads)) {
		return
	}
	if int64(page) > a.hi {
		a.hi = int64(page)
	}
	a.clock++
	if write {
		a.writes[page]++
	} else {
		a.reads[page]++
	}
	a.accessedBytes[page] += size
	if miss {
		a.misses[page]++
		a.movedBytes[page] += size
	}
	if last := a.lastTouch[page]; last != 0 {
		a.reuseSum[page] += a.clock - last
		a.reuseCnt[page]++
	}
	a.lastTouch[page] = a.clock
}

// RecordWriteback notes a dirty line leaving the recording level (capacity
// eviction or explicit flush). Writebacks move bytes but are not program
// touches, so the reuse clock does not advance.
//
//igpu:hot RecordWriteback runs on the simulator's eviction/flush path; it must stay allocation-free.
func (a *Accumulator) RecordWriteback(addr, size int64) {
	page := uint64(addr) >> a.pageShift
	if page >= uint64(len(a.reads)) {
		return
	}
	if int64(page) > a.hi {
		a.hi = int64(page)
	}
	a.writebacks[page]++
	a.movedBytes[page] += size
}

// Reset zeroes every counter, keeping the allocations for reuse. Only the
// buckets up to the recorded high-water mark are cleared, so resetting
// between model runs costs proportional to the footprint actually touched,
// not the platform's whole address space.
func (a *Accumulator) Reset() {
	a.clock = 0
	if a.hi < 0 {
		return
	}
	n := a.hi + 1
	clear(a.reads[:n])
	clear(a.writes[:n])
	clear(a.misses[:n])
	clear(a.writebacks[:n])
	clear(a.accessedBytes[:n])
	clear(a.movedBytes[:n])
	clear(a.lastTouch[:n])
	clear(a.reuseSum[:n])
	clear(a.reuseCnt[:n])
	a.hi = -1
}

// BufferHeat is one buffer's rolled-up heat summary. All counters are sums
// over the page buckets overlapping the buffer; a bucket straddling a buffer
// boundary (allocations align to cache lines, not pages) is attributed to
// every buffer it overlaps, which slightly over-counts boundary pages but
// never loses traffic.
type BufferHeat struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	Size int64  `json:"size"`

	Reads      int64 `json:"reads"`
	Writes     int64 `json:"writes"`
	Misses     int64 `json:"misses"`
	Writebacks int64 `json:"writebacks"`

	// AccessedBytes is the demand traffic requested against the buffer;
	// MovedBytes is what actually crossed below the entry caches (miss
	// fills, writebacks, uncached/pinned transactions).
	AccessedBytes int64 `json:"accessed_bytes"`
	MovedBytes    int64 `json:"moved_bytes"`

	// HitRate is the fraction of demand records serviced at the entry level.
	HitRate float64 `json:"hit_rate"`
	// TouchedPages of Pages overlapping buckets saw at least one record;
	// TouchDensity is their ratio — low density flags sparse access.
	TouchedPages int     `json:"touched_pages"`
	Pages        int     `json:"pages"`
	TouchDensity float64 `json:"touch_density"`
	// MeanReuse is the average clock delta between consecutive demand
	// touches of the same page (0 = no page touched twice). Small values
	// mean tight temporal locality.
	MeanReuse float64 `json:"mean_reuse"`
	// HeatScore is AccessedBytes per buffer byte — the access intensity the
	// hot/cold classification keys on.
	HeatScore float64 `json:"heat_score"`
}

// Touches returns the demand record count.
func (h BufferHeat) Touches() int64 { return h.Reads + h.Writes }

// Snapshot rolls the page buckets up into one BufferHeat per live buffer,
// hottest first (ties broken by name so the order is deterministic).
func (a *Accumulator) Snapshot(bufs []mmu.Buffer) []BufferHeat {
	if len(bufs) == 0 {
		return nil
	}
	out := make([]BufferHeat, 0, len(bufs))
	for _, b := range bufs {
		h := a.rangeHeat(b.Addr, b.End())
		h.Name = b.Name
		h.Kind = b.Kind.String()
		h.Size = b.Size
		if b.Size > 0 {
			h.HeatScore = float64(h.AccessedBytes) / float64(b.Size)
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].HeatScore != out[j].HeatScore {
			return out[i].HeatScore > out[j].HeatScore
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Totals rolls the whole address space into one summary (Name "(all)").
func (a *Accumulator) Totals() BufferHeat {
	h := a.rangeHeat(0, a.extent)
	h.Name = "(all)"
	h.Size = a.extent
	if a.extent > 0 {
		h.HeatScore = float64(h.AccessedBytes) / float64(a.extent)
	}
	return h
}

// rangeHeat sums the buckets overlapping [lo, hi).
func (a *Accumulator) rangeHeat(lo, hi int64) BufferHeat {
	var h BufferHeat
	if hi <= lo {
		return h
	}
	first := lo >> a.pageShift
	last := (hi - 1) >> a.pageShift
	if first < 0 {
		first = 0
	}
	if max := int64(len(a.reads) - 1); last > max {
		last = max
	}
	var reuseSum, reuseCnt int64
	for p := first; p <= last; p++ {
		h.Pages++
		h.Reads += a.reads[p]
		h.Writes += a.writes[p]
		h.Misses += a.misses[p]
		h.Writebacks += a.writebacks[p]
		h.AccessedBytes += a.accessedBytes[p]
		h.MovedBytes += a.movedBytes[p]
		if a.reads[p]+a.writes[p] > 0 {
			h.TouchedPages++
		}
		reuseSum += a.reuseSum[p]
		reuseCnt += a.reuseCnt[p]
	}
	if t := h.Touches(); t > 0 {
		h.HitRate = 1 - float64(h.Misses)/float64(t)
	}
	if h.Pages > 0 {
		h.TouchDensity = float64(h.TouchedPages) / float64(h.Pages)
	}
	if reuseCnt > 0 {
		h.MeanReuse = float64(reuseSum) / float64(reuseCnt)
	}
	return h
}

// Render draws the per-buffer heat table as ASCII, hottest buffer first,
// with a bar proportional to each buffer's heat score. Deterministic for a
// deterministic input order.
func Render(heats []BufferHeat) string {
	if len(heats) == 0 {
		return "heatmap: no buffers recorded\n"
	}
	maxScore := 0.0
	nameW := len("buffer")
	for _, h := range heats {
		if h.HeatScore > maxScore {
			maxScore = h.HeatScore
		}
		if len(h.Name) > nameW {
			nameW = len(h.Name)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s %-8s %10s %6s %6s %10s %8s\n",
		nameW, "buffer", "kind", "accessed", "hit%", "touch%", "moved", "heat")
	for _, h := range heats {
		bar := ""
		if maxScore > 0 {
			n := int(h.HeatScore / maxScore * 20)
			bar = strings.Repeat("#", n)
		}
		fmt.Fprintf(&b, "%-*s %-8s %10d %6.1f %6.1f %10d %8.2f  %s\n",
			nameW, h.Name, h.Kind, h.AccessedBytes, h.HitRate*100, h.TouchDensity*100,
			h.MovedBytes, h.HeatScore, bar)
	}
	return b.String()
}
