package soc

import (
	"igpucomm/internal/cache"
	"igpucomm/internal/memdev"
	"igpucomm/internal/units"
)

func copyAccessRead(n int64) cache.Access {
	return cache.Access{Addr: 0, Size: n, Kind: cache.Read}
}

func copyAccessWrite(n int64) cache.Access {
	return cache.Access{Addr: 0, Size: n, Kind: cache.Writeback}
}

// Stream is one agent's contribution to an overlapped interval: how long it
// runs alone and how much DRAM traffic it generates in that time.
type Stream struct {
	Name  string
	Solo  units.Latency // runtime when executed alone
	Bytes int64         // DRAM bytes it moves during Solo
}

// Demand returns the stream's solo bandwidth appetite.
func (s Stream) Demand() units.BytesPerSecond {
	if s.Solo <= 0 || s.Bytes <= 0 {
		return 0
	}
	return units.BytesPerSecond(float64(s.Bytes) / s.Solo.Seconds())
}

// Overlap models running the streams concurrently on this SoC's DRAM: the
// memory controller arbitrates bandwidth max-min fairly, each stream's
// runtime stretches by its grant ratio, and the interval ends when the
// slowest stream finishes. This is the primitive behind the zero-copy
// communication pattern's CPU/GPU task overlap (paper §III-C) and the third
// micro-benchmark.
//
// Returned are the overlapped makespan and the per-stream stretched times.
func (s *SoC) Overlap(streams ...Stream) (units.Latency, []units.Latency) {
	demands := make([]memdev.Demand, len(streams))
	for i, st := range streams {
		demands[i] = memdev.Demand{Name: st.Name, Want: st.Demand()}
	}
	grants := memdev.Share(s.cfg.DRAM.Bandwidth, demands)
	times := make([]units.Latency, len(streams))
	var makespan units.Latency
	for i, st := range streams {
		slow := memdev.Slowdown(demands[i].Want, grants[i])
		times[i] = units.Latency(float64(st.Solo) * slow)
		if times[i] > makespan {
			makespan = times[i]
		}
	}
	return makespan, times
}
