// Package soc composes the substrate models — CPU complex, integrated GPU,
// shared DRAM, MMU, copy engine, coherence hardware — into one simulated
// system-on-chip, the thing a communication model runs a workload on.
//
// The SoC owns the zero-copy wiring decision that distinguishes device
// generations (paper Fig 1):
//
//   - Devices without I/O coherence (Nano, TX2): pinned buffers are mapped
//     uncacheable on the CPU side and routed around the GPU caches to a slow
//     uncached DRAM port (Fig 1.a).
//   - Devices with hardware I/O coherence (Xavier): the CPU keeps caching
//     pinned buffers; GPU pinned accesses are routed through an IOPort that
//     snoops the CPU LLC (Fig 1.b).
//
// The copy engine (Fig 1.c) and unified-memory migration (Fig 1.d) live here
// too, as the primitives the SC and UM models are built from.
package soc

import (
	"fmt"

	"igpucomm/internal/coherence"
	"igpucomm/internal/cpu"
	"igpucomm/internal/energy"
	"igpucomm/internal/faults"
	"igpucomm/internal/gpu"
	"igpucomm/internal/heatmap"
	"igpucomm/internal/memdev"
	"igpucomm/internal/mmu"
	"igpucomm/internal/units"
)

// faultClone interrupts platform instantiation (soc.New, which Clone
// delegates to) — the engine builds a platform whenever its per-config pool
// is empty, so a latency spike here slows fan-out and a panic here exercises
// the engine's goroutine-boundary recovery.
var faultClone = faults.Register("soc.clone",
	"fresh platform instantiation (engine fan-out clones)",
	faults.CanLatency|faults.CanPanic)

// Config describes a complete embedded platform.
type Config struct {
	Name     string
	MemBytes int64 // size of the shared physical space

	DRAM memdev.Config
	CPU  cpu.Config
	GPU  gpu.Config

	// Zero-copy path.
	IOCoherent      bool                 // hardware I/O coherence (Xavier)
	PinnedLatency   units.Latency        // uncached pinned read latency
	PinnedWriteLat  units.Latency        // uncached pinned write latency (write-combined)
	PinnedBandwidth units.BytesPerSecond // pinned path sustained bandwidth
	IOHopLatency    units.Latency        // interconnect hop when IOCoherent
	IOBandwidth     units.BytesPerSecond // coherent path sustained bandwidth

	// Copy engine (cudaMemcpy).
	CopyBandwidth units.BytesPerSecond
	CopySetup     units.Latency // per-call driver overhead

	// Unified memory.
	PageSize     int64
	FaultLatency units.Latency // per migrated page driver overhead
	// UMKernelFactor scales UM kernel time relative to SC (driver
	// prefetch/placement differences; the paper bounds it at ±8%).
	UMKernelFactor float64

	Power energy.PowerConfig
}

// Validate reports configuration problems.
func (c Config) Validate() error {
	if c.MemBytes <= 0 {
		return fmt.Errorf("soc %s: memory size must be positive", c.Name)
	}
	if err := c.DRAM.Validate(); err != nil {
		return fmt.Errorf("soc %s: %w", c.Name, err)
	}
	if err := c.CPU.Validate(); err != nil {
		return fmt.Errorf("soc %s: %w", c.Name, err)
	}
	if err := c.GPU.Validate(); err != nil {
		return fmt.Errorf("soc %s: %w", c.Name, err)
	}
	if c.PinnedLatency < 0 || c.PinnedWriteLat < 0 || c.IOHopLatency < 0 || c.CopySetup < 0 || c.FaultLatency < 0 {
		return fmt.Errorf("soc %s: negative latency parameter", c.Name)
	}
	if !c.IOCoherent && c.PinnedBandwidth <= 0 {
		return fmt.Errorf("soc %s: pinned bandwidth must be positive", c.Name)
	}
	if c.IOCoherent && c.IOBandwidth <= 0 {
		return fmt.Errorf("soc %s: coherent path bandwidth must be positive", c.Name)
	}
	if c.CopyBandwidth <= 0 {
		return fmt.Errorf("soc %s: copy bandwidth must be positive", c.Name)
	}
	if c.PageSize <= 0 || c.PageSize&(c.PageSize-1) != 0 {
		return fmt.Errorf("soc %s: page size must be a positive power of two", c.Name)
	}
	if c.UMKernelFactor <= 0 {
		return fmt.Errorf("soc %s: UM kernel factor must be positive", c.Name)
	}
	return c.Power.Validate()
}

// SoC is one simulated platform instance. Not safe for concurrent use.
type SoC struct {
	cfg Config

	DRAM     *memdev.DRAM
	CPU      *cpu.CPU
	GPU      *gpu.GPU
	Space    *mmu.Space
	Migrator *mmu.Migrator

	ioPort *coherence.IOPort // nil unless IOCoherent

	cpuDRAMPort   *memdev.Port
	cpuPinnedPort *memdev.UncachedPort

	copyBytes int64 // total bytes moved by the copy engine
	copyCalls int64

	// heat is the platform's per-page accumulator, allocated lazily on the
	// first EnableHeat and kept across disable/enable cycles so pooled
	// platforms never reallocate it. heatOn gates whether the agents carry
	// sinks right now.
	heat   *heatmap.Accumulator
	heatOn bool
}

// New builds a platform instance from its configuration. Panics on invalid
// configuration — device catalogs are static data and must be right.
func New(cfg Config) *SoC {
	_ = faults.Fire(faultClone)
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	dram := memdev.New(cfg.DRAM)

	cpuUncached := dram.NewUncachedPortRW(cfg.Name+"/cpu-pinned", cfg.PinnedLatency, pinnedWriteLat(cfg))
	cpuDRAM := dram.NewPort(cfg.Name+"/cpu-dram", -1)
	c := cpu.New(cfg.CPU, cpuDRAM, cpuUncached)

	g := gpu.New(cfg.GPU, dram.NewPort(cfg.Name+"/gpu-dram", -1))

	s := &SoC{
		cfg:           cfg,
		DRAM:          dram,
		CPU:           c,
		GPU:           g,
		Space:         mmu.NewSpace(cfg.MemBytes, maxLine(cfg)),
		Migrator:      mmu.NewMigrator(cfg.PageSize),
		cpuDRAMPort:   cpuDRAM,
		cpuPinnedPort: cpuUncached,
	}
	if cfg.IOCoherent {
		s.ioPort = coherence.NewIOPort(cfg.Name+"/io-coherence", c.LLC(), cfg.IOHopLatency)
		g.SetPinnedPath(s.ioPort, cfg.IOBandwidth)
	} else {
		g.SetPinnedPath(dram.NewUncachedPortRW(cfg.Name+"/gpu-pinned", cfg.PinnedLatency, pinnedWriteLat(cfg)), cfg.PinnedBandwidth)
	}
	return s
}

func pinnedWriteLat(cfg Config) units.Latency {
	if cfg.PinnedWriteLat > 0 {
		return cfg.PinnedWriteLat
	}
	return cfg.PinnedLatency / 10
}

func maxLine(cfg Config) int64 {
	m := cfg.CPU.LLC.LineSize
	if cfg.GPU.LLC.LineSize > m {
		m = cfg.GPU.LLC.LineSize
	}
	return m
}

// Name returns the platform name.
func (s *SoC) Name() string { return s.cfg.Name }

// Clone builds a platform instance with the same configuration: pristine
// caches, empty address space, zeroed statistics — but NOT a fully
// independent copy. The Config is shared shallowly, so reference-typed
// config state (the ISA cost-model maps) aliases between the original and
// every clone. The contract that makes this safe is immutability: a Config
// is never written through once a platform is built — simulation reads cost
// tables, it does not update them — and TestCloneSharesImmutableConfig
// enforces that by hashing the config across a full model sweep. Mutable
// simulation state (caches, routing, statistics, the address space) is
// private per instance, which is what a not-concurrency-safe SoC actually
// needs from isolation. The execution engine leans on the same contract from
// the other side: it pools whole platforms per config and restores them with
// ResetState instead of cloning per task.
func (s *SoC) Clone() *SoC { return New(s.cfg) }

// Config returns the platform configuration.
func (s *SoC) Config() Config { return s.cfg }

// IOCoherent reports whether the platform has hardware I/O coherence.
func (s *SoC) IOCoherent() bool { return s.cfg.IOCoherent }

// IOPort exposes the coherence port (nil on non-coherent platforms); used by
// ablation experiments.
func (s *SoC) IOPort() *coherence.IOPort { return s.ioPort }

// AllocHost allocates CPU-partition memory.
func (s *SoC) AllocHost(name string, size int64) (mmu.Buffer, error) {
	return s.Space.Alloc(name, size, mmu.HostAlloc)
}

// AllocDevice allocates GPU-partition memory.
func (s *SoC) AllocDevice(name string, size int64) (mmu.Buffer, error) {
	return s.Space.Alloc(name, size, mmu.DeviceAlloc)
}

// AllocPinned allocates a zero-copy buffer and wires the routing
// consequences: on non-coherent platforms the range becomes uncacheable for
// the CPU; on all platforms GPU accesses to it take the pinned path.
func (s *SoC) AllocPinned(name string, size int64) (mmu.Buffer, error) {
	b, err := s.Space.Alloc(name, size, mmu.Pinned)
	if err != nil {
		return mmu.Buffer{}, err
	}
	if !s.cfg.IOCoherent {
		s.CPU.AddUncachedRange(b.Addr, b.End())
	}
	s.GPU.AddPinnedRange(b.Addr, b.End())
	return b, nil
}

// AllocManaged allocates a unified-memory buffer tracked by the migrator.
func (s *SoC) AllocManaged(name string, size int64) (mmu.Buffer, error) {
	return s.Space.Alloc(name, size, mmu.Managed)
}

// Free releases a buffer. Pinned routing entries are rebuilt from the
// surviving buffers.
func (s *SoC) Free(name string) error {
	b, ok := s.Space.Lookup(name)
	if !ok {
		return fmt.Errorf("soc %s: free %q: no such buffer", s.cfg.Name, name)
	}
	if err := s.Space.Free(name); err != nil {
		return err
	}
	if b.Kind == mmu.Pinned {
		s.CPU.ClearUncachedRanges()
		s.GPU.ClearPinnedRanges()
		for _, other := range s.Space.Buffers() {
			if other.Kind == mmu.Pinned {
				if !s.cfg.IOCoherent {
					s.CPU.AddUncachedRange(other.Addr, other.End())
				}
				s.GPU.AddPinnedRange(other.Addr, other.End())
			}
		}
	}
	return nil
}

// Copy runs the copy engine over n bytes and returns the transfer time. The
// traffic (read src + write dst) is charged to DRAM.
func (s *SoC) Copy(n int64) units.Latency {
	if n <= 0 {
		return s.cfg.CopySetup
	}
	s.copyBytes += n
	s.copyCalls++
	// The engine streams through DRAM: n bytes read + n bytes written.
	s.chargeDRAM(n, n)
	return s.cfg.CopySetup + units.Latency(float64(n)/float64(s.cfg.CopyBandwidth)*1e9)
}

// ChargeDMATraffic accounts a DMA-style round trip (read n + write n bytes)
// to DRAM without moving through any cache — what a UM page migration does.
func (s *SoC) ChargeDMATraffic(n int64) {
	if n > 0 {
		s.chargeDRAM(n, n)
	}
}

// MigrationCost converts a Touch result into time: per-fault driver overhead
// plus moving the bytes at copy-engine bandwidth.
func (s *SoC) MigrationCost(faults, bytes int64) units.Latency {
	if faults <= 0 && bytes <= 0 {
		return 0
	}
	move := units.Latency(float64(bytes) / float64(s.cfg.CopyBandwidth) * 1e9)
	return units.Latency(float64(faults))*s.cfg.FaultLatency + move
}

func (s *SoC) chargeDRAM(read, written int64) {
	// The DRAM device tracks totals through its ports; the copy engine has
	// no port of its own, so account directly via a dedicated port-less
	// access. We model it as one bulk read plus one bulk writeback.
	s.DRAM.Do(copyAccessRead(read))
	s.DRAM.Do(copyAccessWrite(written))
}

// CPUTraffic returns the CPU complex's total memory-side traffic: its
// cache-miss traffic to DRAM plus its uncached pinned-path traffic. Used to
// attribute bandwidth demand to the CPU stream during overlapped execution.
func (s *SoC) CPUTraffic() memdev.Stats {
	t := s.cpuDRAMPort.Stats()
	t.Add(s.cpuPinnedPort.Stats())
	return t
}

// CopyBytes returns the total bytes moved by the copy engine.
func (s *SoC) CopyBytes() int64 { return s.copyBytes }

// CopyCalls returns the number of copy-engine invocations.
func (s *SoC) CopyCalls() int64 { return s.copyCalls }

// EnableHeat attaches a per-page heat accumulator to the platform's entry
// points (CPU L1 + uncached port, per-SM GPU L1s + pinned path) and zeroes
// it. The accumulator is sized against the platform's memory extent with the
// platform's migration page as the bucket, allocated once and reused across
// enable/disable cycles. Heat recording never changes simulation results.
func (s *SoC) EnableHeat() {
	if s.heat == nil {
		s.heat = heatmap.New(s.cfg.MemBytes, s.cfg.PageSize)
	}
	s.heat.Reset()
	s.heatOn = true
	s.CPU.SetHeat(s.heat)
	s.GPU.SetHeat(s.heat)
}

// DisableHeat detaches the heat sinks; the accumulator is retained for the
// next EnableHeat. The disabled hot path is back to a single nil check.
func (s *SoC) DisableHeat() {
	s.heatOn = false
	s.CPU.SetHeat(nil)
	s.GPU.SetHeat(nil)
}

// Heat returns the active accumulator, or nil when heat profiling is off.
func (s *SoC) Heat() *heatmap.Accumulator {
	if !s.heatOn {
		return nil
	}
	return s.heat
}

// ResetState clears caches, routing, migration placements and statistics —
// a pristine platform for the next experiment.
func (s *SoC) ResetState() {
	s.CPU.InvalidateAll()
	s.CPU.ResetTime()
	s.CPU.ResetStats()
	s.CPU.ClearUncachedRanges()
	s.GPU.InvalidateCaches()
	s.GPU.ResetStats()
	s.GPU.ClearPinnedRanges()
	s.DRAM.ResetStats()
	s.cpuDRAMPort.ResetStats()
	s.cpuPinnedPort.ResetStats()
	s.Migrator.Reset()
	s.copyBytes = 0
	s.copyCalls = 0
	if s.ioPort != nil {
		s.ioPort.ResetStats()
	}
	if s.heatOn && s.heat != nil {
		s.heat.Reset()
	}
	// Rebuild routing for surviving pinned buffers.
	for _, b := range s.Space.Buffers() {
		if b.Kind == mmu.Pinned {
			if !s.cfg.IOCoherent {
				s.CPU.AddUncachedRange(b.Addr, b.End())
			}
			s.GPU.AddPinnedRange(b.Addr, b.End())
		}
	}
}

// Describe returns a human-readable platform summary for CLIs.
func (s *SoC) Describe() string {
	c := s.cfg
	coherence := "software coherence only (pinned buffers uncached)"
	zcPath := fmt.Sprintf("pinned path %.2f GB/s", c.PinnedBandwidth.GB())
	if c.IOCoherent {
		coherence = "hardware I/O coherence (GPU snoops the CPU LLC)"
		zcPath = fmt.Sprintf("coherent path %.2f GB/s", c.IOBandwidth.GB())
	}
	return fmt.Sprintf(
		"%s: CPU %.2f GHz (L1 %s, LLC %s), GPU %d SMs @ %.2f GHz (L1 %s/SM, LLC %s, %.0f GB/s), "+
			"DRAM %.0f GB/s, copy engine %.0f GB/s, %s, %s",
		c.Name,
		float64(c.CPU.Freq)/1e9, units.FormatBytes(c.CPU.L1.Size), units.FormatBytes(c.CPU.LLC.Size),
		c.GPU.SMs, float64(c.GPU.Freq)/1e9, units.FormatBytes(c.GPU.L1.Size), units.FormatBytes(c.GPU.LLC.Size),
		c.GPU.LLCBandwidth.GB(),
		c.DRAM.Bandwidth.GB(), c.CopyBandwidth.GB(), coherence, zcPath)
}
