package soc_test

// Mutation detection for the Clone aliasing contract (see SoC.Clone): the
// shared Config must behave as immutable state. We hash the configuration of
// an original platform and a clone, drive a full communication-model sweep
// on both, and require every hash to be unchanged and identical — a single
// written-through cost-table entry or renamed field would show up here.

import (
	"crypto/sha256"
	"encoding/json"
	"reflect"
	"testing"

	"igpucomm/internal/apps/catalog"
	"igpucomm/internal/comm"
	"igpucomm/internal/devices"
	"igpucomm/internal/soc"
)

func configHash(t *testing.T, cfg soc.Config) [sha256.Size]byte {
	t.Helper()
	b, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sha256.Sum256(b)
}

func sweep(t *testing.T, s *soc.SoC) {
	t.Helper()
	w, err := catalog.ByName(catalog.Names()[0], catalog.Quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range comm.AllModels() {
		if _, err := m.Run(s, w); err != nil {
			t.Fatalf("model %s: %v", m.Name(), err)
		}
	}
}

// TestCloneSharesImmutableConfig pins both halves of the contract: the config
// is genuinely shared (the CPU and GPU cost-model maps alias, so a deep-copy
// regression would be visible), and a full sweep on either instance mutates
// neither configuration.
func TestCloneSharesImmutableConfig(t *testing.T) {
	for _, cfg := range devices.All() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			orig := soc.New(cfg)
			clone := orig.Clone()

			// Sharing: the reference-typed cost tables must alias, not copy.
			oc, cc := orig.Config(), clone.Config()
			if reflect.ValueOf(oc.CPU.Costs.Issue).Pointer() != reflect.ValueOf(cc.CPU.Costs.Issue).Pointer() {
				t.Error("clone deep-copied the CPU cost map; Clone documents shallow sharing")
			}
			if reflect.ValueOf(oc.GPU.Costs.Issue).Pointer() != reflect.ValueOf(cc.GPU.Costs.Issue).Pointer() {
				t.Error("clone deep-copied the GPU cost map; Clone documents shallow sharing")
			}

			// Immutability: hash before, sweep both, hash after.
			before := configHash(t, oc)
			if got := configHash(t, cc); got != before {
				t.Fatal("clone config hash differs from original before any work")
			}
			sweep(t, orig)
			sweep(t, clone)
			if got := configHash(t, orig.Config()); got != before {
				t.Error("sweep mutated the original platform's shared config")
			}
			if got := configHash(t, clone.Config()); got != before {
				t.Error("sweep mutated the clone's shared config")
			}
		})
	}
}
