package soc

import (
	"math"
	"strings"
	"testing"

	"igpucomm/internal/cache"
	"igpucomm/internal/cpu"
	"igpucomm/internal/energy"
	"igpucomm/internal/gpu"
	"igpucomm/internal/isa"
	"igpucomm/internal/memdev"
	"igpucomm/internal/mmu"
	"igpucomm/internal/units"
)

// smallConfig builds a tiny but fully valid platform for unit tests.
func smallConfig(ioCoherent bool) Config {
	return Config{
		Name:     "testsoc",
		MemBytes: 16 * units.MiB,
		DRAM:     memdev.Config{Name: "dram", Latency: 100, Bandwidth: 10 * units.GBps},
		CPU: cpu.Config{
			Name:          "cpu",
			Freq:          units.GHz,
			L1:            cache.Config{Name: "cpuL1", Size: 4 * units.KiB, LineSize: 64, Ways: 4, HitLatency: 2},
			LLC:           cache.Config{Name: "cpuLLC", Size: 64 * units.KiB, LineSize: 64, Ways: 8, HitLatency: 12},
			Costs:         isa.DefaultCPUCosts(),
			FlushLineCost: 1,
		},
		GPU: gpu.Config{
			Name:          "gpu",
			Freq:          units.GHz,
			SMs:           2,
			WarpSize:      32,
			MaxInflight:   8,
			L1:            cache.Config{Name: "gpuL1", Size: 8 * units.KiB, LineSize: 64, Ways: 4, HitLatency: 20},
			LLC:           cache.Config{Name: "gpuLLC", Size: 64 * units.KiB, LineSize: 64, Ways: 8, HitLatency: 60},
			LLCBandwidth:  50 * units.GBps,
			DRAMBandwidth: 10 * units.GBps,
			Costs:         isa.DefaultGPUCosts(),
		},
		IOCoherent:      ioCoherent,
		PinnedLatency:   500,
		PinnedBandwidth: units.GBps,
		IOHopLatency:    50,
		IOBandwidth:     5 * units.GBps,
		CopyBandwidth:   4 * units.GBps,
		CopySetup:       1000,
		PageSize:        4096,
		FaultLatency:    2000,
		UMKernelFactor:  1.0,
		Power:           energy.PowerConfig{StaticWatts: 1},
	}
}

func TestConfigValidateMutations(t *testing.T) {
	if err := smallConfig(false).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := smallConfig(true).Validate(); err != nil {
		t.Fatalf("valid coherent config rejected: %v", err)
	}
	muts := []func(*Config){
		func(c *Config) { c.MemBytes = 0 },
		func(c *Config) { c.DRAM.Bandwidth = 0 },
		func(c *Config) { c.CPU.Freq = 0 },
		func(c *Config) { c.GPU.SMs = 0 },
		func(c *Config) { c.PinnedLatency = -1 },
		func(c *Config) { c.PinnedBandwidth = 0 }, // non-coherent needs it
		func(c *Config) { c.CopyBandwidth = 0 },
		func(c *Config) { c.PageSize = 1000 },
		func(c *Config) { c.UMKernelFactor = 0 },
		func(c *Config) { c.Power.StaticWatts = -1 },
	}
	for i, m := range muts {
		c := smallConfig(false)
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	coh := smallConfig(true)
	coh.IOBandwidth = 0
	if err := coh.Validate(); err == nil {
		t.Error("coherent platform without IO bandwidth accepted")
	}
}

func TestAllocationKindsAndRouting(t *testing.T) {
	s := New(smallConfig(false))
	host, err := s.AllocHost("h", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if host.Kind != mmu.HostAlloc {
		t.Error("host kind wrong")
	}
	dev, err := s.AllocDevice("d", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if dev.Kind != mmu.DeviceAlloc {
		t.Error("device kind wrong")
	}
	man, err := s.AllocManaged("m", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if man.Kind != mmu.Managed {
		t.Error("managed kind wrong")
	}
	pin, err := s.AllocPinned("p", 1024)
	if err != nil {
		t.Fatal(err)
	}
	// On a non-coherent platform the CPU must see pinned memory uncached.
	s.CPU.Load(pin.Addr, 4)
	if s.CPU.L1().Stats().Accesses() != 0 {
		t.Error("pinned access went through CPU L1 on non-coherent platform")
	}
	// And ordinary memory stays cached.
	s.CPU.Load(host.Addr, 4)
	if s.CPU.L1().Stats().Accesses() != 1 {
		t.Error("host access did not go through CPU L1")
	}
}

func TestPinnedRoutingCoherentPlatform(t *testing.T) {
	s := New(smallConfig(true))
	pin, err := s.AllocPinned("p", 1024)
	if err != nil {
		t.Fatal(err)
	}
	// CPU keeps caching pinned buffers under I/O coherence.
	s.CPU.Load(pin.Addr, 4)
	if s.CPU.L1().Stats().Accesses() != 1 {
		t.Error("pinned access bypassed CPU cache on coherent platform")
	}
	// GPU pinned accesses route through the IO port into the CPU LLC.
	if s.IOPort() == nil {
		t.Fatal("coherent platform missing IO port")
	}
	_, err = s.GPU.Launch(gpu.Kernel{Name: "k", Threads: 32, Program: func(tid int, p *isa.Program) {
		p.Ld(pin.Addr+int64(tid)*4, 4)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if s.IOPort().Stats().Reads == 0 {
		t.Error("GPU pinned reads did not traverse the IO coherence port")
	}
}

func TestFreeRebuildsPinnedRouting(t *testing.T) {
	s := New(smallConfig(false))
	a, _ := s.AllocPinned("a", 1024)
	b, _ := s.AllocPinned("b", 1024)
	if err := s.Free("a"); err != nil {
		t.Fatal(err)
	}
	// a's range must be cacheable again; b's must stay uncached.
	s.CPU.Load(a.Addr, 4)
	if s.CPU.L1().Stats().Accesses() != 1 {
		t.Error("freed pinned range still uncached")
	}
	s.CPU.Load(b.Addr, 4)
	if s.CPU.L1().Stats().Accesses() != 1 {
		t.Error("surviving pinned range lost its uncached mapping")
	}
	if err := s.Free("nope"); err == nil {
		t.Error("freeing unknown buffer accepted")
	}
}

func TestCopyTimingAndAccounting(t *testing.T) {
	s := New(smallConfig(false))
	// 4 GB/s = 4 bytes/ns; 4096 bytes -> 1024ns + 1000 setup.
	lat := s.Copy(4096)
	if lat != 2024 {
		t.Errorf("copy latency = %v, want 2024", lat)
	}
	if s.CopyBytes() != 4096 || s.CopyCalls() != 1 {
		t.Errorf("copy counters = %d/%d", s.CopyBytes(), s.CopyCalls())
	}
	st := s.DRAM.Stats()
	if st.BytesRead != 4096 || st.BytesWritten != 4096 {
		t.Errorf("copy DRAM traffic = %d read / %d written, want 4096/4096", st.BytesRead, st.BytesWritten)
	}
	if lat := s.Copy(0); lat != 1000 {
		t.Errorf("empty copy = %v, want setup only", lat)
	}
}

func TestMigrationCost(t *testing.T) {
	s := New(smallConfig(false))
	// 2 faults * 2000ns + 8192 bytes at 4 B/ns = 4000 + 2048.
	if got := s.MigrationCost(2, 8192); got != 6048 {
		t.Errorf("migration cost = %v, want 6048", got)
	}
	if got := s.MigrationCost(0, 0); got != 0 {
		t.Errorf("zero migration cost = %v", got)
	}
}

func TestOverlapNoContention(t *testing.T) {
	s := New(smallConfig(false)) // 10 GB/s DRAM
	// Two streams wanting 2 GB/s each: no contention, makespan = max solo.
	make1, times := s.Overlap(
		Stream{Name: "cpu", Solo: 1000, Bytes: 2000},
		Stream{Name: "gpu", Solo: 2000, Bytes: 4000},
	)
	if make1 != 2000 {
		t.Errorf("makespan = %v, want 2000", make1)
	}
	if times[0] != 1000 || times[1] != 2000 {
		t.Errorf("times = %v", times)
	}
}

func TestOverlapContentionStretches(t *testing.T) {
	s := New(smallConfig(false)) // 10 GB/s
	// Each stream alone wants 8 GB/s; together they split 5/5 -> 1.6x each.
	makespan, times := s.Overlap(
		Stream{Name: "cpu", Solo: 1000, Bytes: 8000},
		Stream{Name: "gpu", Solo: 1000, Bytes: 8000},
	)
	if math.Abs(float64(times[0])-1600) > 1 || math.Abs(float64(times[1])-1600) > 1 {
		t.Errorf("stretched times = %v, want ~1600", times)
	}
	if math.Abs(float64(makespan)-1600) > 1 {
		t.Errorf("makespan = %v, want ~1600", makespan)
	}
}

func TestOverlapComputeOnlyStreams(t *testing.T) {
	s := New(smallConfig(false))
	makespan, _ := s.Overlap(
		Stream{Name: "cpu", Solo: 500, Bytes: 0},
		Stream{Name: "gpu", Solo: 700, Bytes: 0},
	)
	if makespan != 700 {
		t.Errorf("makespan = %v, want 700 (no memory, no stretch)", makespan)
	}
}

func TestResetStateRestoresPinnedRouting(t *testing.T) {
	s := New(smallConfig(false))
	pin, _ := s.AllocPinned("p", 1024)
	s.CPU.Load(0x100000, 4)
	s.Copy(128)
	s.ResetState()
	if s.CPU.Elapsed() != 0 || s.CopyBytes() != 0 || s.DRAM.Stats().Bytes() != 0 {
		t.Error("state survived reset")
	}
	// Pinned routing must survive the reset (buffer still allocated).
	s.CPU.Load(pin.Addr, 4)
	if s.CPU.L1().Stats().Accesses() != 0 {
		t.Error("pinned routing lost after ResetState")
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config accepted")
		}
	}()
	c := smallConfig(false)
	c.MemBytes = -1
	New(c)
}

func TestStreamDemand(t *testing.T) {
	st := Stream{Solo: 1000, Bytes: 5000} // 5 bytes/ns = 5 GB/s
	if got := st.Demand().GB(); math.Abs(got-5) > 1e-9 {
		t.Errorf("demand = %v GB/s, want 5", got)
	}
	if (Stream{Solo: 0, Bytes: 10}).Demand() != 0 {
		t.Error("degenerate stream demand should be 0")
	}
}

func TestChargeDMATraffic(t *testing.T) {
	s := New(smallConfig(false))
	s.ChargeDMATraffic(1024)
	st := s.DRAM.Stats()
	if st.BytesRead != 1024 || st.BytesWritten != 1024 {
		t.Errorf("DMA traffic = %d/%d, want 1024/1024", st.BytesRead, st.BytesWritten)
	}
	s.ChargeDMATraffic(0)
	s.ChargeDMATraffic(-5)
	if s.DRAM.Stats().BytesRead != 1024 {
		t.Error("degenerate DMA charges counted")
	}
}

func TestCPUTrafficCombinesPorts(t *testing.T) {
	s := New(smallConfig(false))
	pin, err := s.AllocPinned("p", 1024)
	if err != nil {
		t.Fatal(err)
	}
	host, err := s.AllocHost("h", 1024)
	if err != nil {
		t.Fatal(err)
	}
	s.CPU.Load(host.Addr, 4) // miss -> DRAM port traffic
	s.CPU.Load(pin.Addr, 4)  // pinned port traffic
	tr := s.CPUTraffic()
	if tr.BytesRead < 64+4 {
		t.Errorf("combined CPU traffic = %d bytes, want >= 68", tr.BytesRead)
	}
}

func TestOverlapThreeStreams(t *testing.T) {
	s := New(smallConfig(false)) // 10 GB/s DRAM
	// Three 6 GB/s streams over 10 GB/s: each granted ~3.33 -> 1.8x stretch.
	makespan, times := s.Overlap(
		Stream{Name: "a", Solo: 1000, Bytes: 6000},
		Stream{Name: "b", Solo: 1000, Bytes: 6000},
		Stream{Name: "c", Solo: 1000, Bytes: 6000},
	)
	for i, tm := range times {
		if math.Abs(float64(tm)-1800) > 1 {
			t.Errorf("stream %d stretched to %v, want ~1800", i, tm)
		}
	}
	if math.Abs(float64(makespan)-1800) > 1 {
		t.Errorf("makespan = %v", makespan)
	}
}

func TestDescribe(t *testing.T) {
	s := New(smallConfig(false))
	d := s.Describe()
	for _, want := range []string{"testsoc", "2 SMs", "software coherence", "pinned path"} {
		if !strings.Contains(d, want) {
			t.Errorf("describe missing %q: %s", want, d)
		}
	}
	coh := New(smallConfig(true)).Describe()
	if !strings.Contains(coh, "I/O coherence") || !strings.Contains(coh, "coherent path") {
		t.Errorf("coherent describe wrong: %s", coh)
	}
}
