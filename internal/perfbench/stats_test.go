package perfbench

import (
	"math"
	"testing"
)

func TestSummarizeOddCount(t *testing.T) {
	s := Summarize([]float64{5, 1, 9, 3, 7})
	if s.Median != 5 {
		t.Errorf("median = %v, want 5", s.Median)
	}
	if s.Min != 1 {
		t.Errorf("min = %v, want 1", s.Min)
	}
	// deviations from 5: {0, 4, 4, 2, 2} -> sorted {0,2,2,4,4} -> median 2
	if s.MAD != 2 {
		t.Errorf("mad = %v, want 2", s.MAD)
	}
	if s.P95 != 9 {
		t.Errorf("p95 = %v, want 9", s.P95)
	}
}

func TestSummarizeEvenCount(t *testing.T) {
	s := Summarize([]float64{4, 2, 8, 6})
	if s.Median != 5 {
		t.Errorf("median = %v, want 5 (mean of middles)", s.Median)
	}
}

func TestSummarizeSingleSample(t *testing.T) {
	s := Summarize([]float64{42})
	if s.Median != 42 || s.Min != 42 || s.P95 != 42 || s.MAD != 0 {
		t.Errorf("single-sample summary = %+v, want all 42 / mad 0", s)
	}
}

func TestSummarizeOutlierRobustness(t *testing.T) {
	// One 100x outlier must not drag the median or the MAD, only the p95.
	clean := Summarize([]float64{10, 11, 9, 10, 10, 11, 9, 10, 10, 10})
	dirty := Summarize([]float64{10, 11, 9, 10, 10, 11, 9, 10, 10, 1000})
	if clean.Median != dirty.Median {
		t.Errorf("median moved on outlier: %v -> %v", clean.Median, dirty.Median)
	}
	if dirty.MAD > 1 {
		t.Errorf("mad inflated by outlier: %v", dirty.MAD)
	}
	if dirty.P95 != 1000 {
		t.Errorf("p95 = %v, want 1000 (tail must see the outlier)", dirty.P95)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{
		{50, 5}, {95, 10}, {100, 10}, {10, 1}, {0, 1},
	}
	for _, c := range cases {
		if got := percentileSorted(sorted, c.p); got != c.want {
			t.Errorf("p%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Summarize(nil) did not panic")
		}
	}()
	Summarize(nil)
}

func TestSummaryFiniteOnLargeValues(t *testing.T) {
	s := Summarize([]float64{1e15, 2e15, 3e15})
	for _, v := range []float64{s.Median, s.MAD, s.Min, s.P95} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("non-finite statistic: %+v", s)
		}
	}
}
