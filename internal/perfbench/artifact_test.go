package perfbench

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func validArtifact() Artifact {
	return Artifact{
		Schema:     SchemaVersion,
		CreatedAt:  "2026-08-05T12:00:00Z",
		Host:       CurrentHost(),
		Quick:      true,
		Iterations: 3,
		Scenarios: []ScenarioResult{
			{Name: "a", Component: "engine", Unit: "ns", Iterations: 3,
				MedianNS: 200, MADNS: 10, MinNS: 100, P95NS: 300,
				SamplesNS: []float64{100, 200, 300}},
			{Name: "b", Component: "comm", Unit: "ns", Iterations: 3,
				MedianNS: 2e6, MADNS: 1e4, MinNS: 1.9e6, P95NS: 2.2e6},
		},
	}
}

// TestArtifactRoundTrip is the schema round-trip proof: write -> read
// reproduces every field, including raw samples.
func TestArtifactRoundTrip(t *testing.T) {
	a := validArtifact()
	var buf bytes.Buffer
	if err := a.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != a.Schema || got.CreatedAt != a.CreatedAt ||
		got.Quick != a.Quick || got.Iterations != a.Iterations {
		t.Errorf("header mismatch: %+v vs %+v", got, a)
	}
	if len(got.Scenarios) != len(a.Scenarios) {
		t.Fatalf("scenario count %d, want %d", len(got.Scenarios), len(a.Scenarios))
	}
	for i := range a.Scenarios {
		w, g := a.Scenarios[i], got.Scenarios[i]
		if w.Name != g.Name || w.MedianNS != g.MedianNS || w.MADNS != g.MADNS ||
			w.MinNS != g.MinNS || w.P95NS != g.P95NS || w.Iterations != g.Iterations {
			t.Errorf("scenario %d mismatch: %+v vs %+v", i, g, w)
		}
		if len(w.SamplesNS) != len(g.SamplesNS) {
			t.Errorf("scenario %d samples %d, want %d", i, len(g.SamplesNS), len(w.SamplesNS))
		}
	}
}

func TestArtifactFileRoundTrip(t *testing.T) {
	a := validArtifact()
	path := filepath.Join(t.TempDir(), "sub", "BENCH_test.json")
	if err := a.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArtifactFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion {
		t.Errorf("schema = %q", got.Schema)
	}
}

func TestArtifactValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Artifact)
		want   string
	}{
		{"wrong schema", func(a *Artifact) { a.Schema = "igpucomm.perfbench/v0" }, "schema"},
		{"bad timestamp", func(a *Artifact) { a.CreatedAt = "yesterday" }, "created_at"},
		{"no scenarios", func(a *Artifact) { a.Scenarios = nil }, "no scenarios"},
		{"zero iterations", func(a *Artifact) { a.Iterations = 0 }, "iterations"},
		{"empty name", func(a *Artifact) { a.Scenarios[0].Name = "" }, "empty name"},
		{"duplicate name", func(a *Artifact) { a.Scenarios[1].Name = "a" }, "twice"},
		{"wrong unit", func(a *Artifact) { a.Scenarios[0].Unit = "ms" }, "unit"},
		{"negative stat", func(a *Artifact) { a.Scenarios[0].MADNS = -1 }, "finite"},
		{"unordered stats", func(a *Artifact) { a.Scenarios[0].MinNS = 1e9 }, "ordered"},
		{"sample count mismatch", func(a *Artifact) { a.Scenarios[0].SamplesNS = []float64{1} }, "samples"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := validArtifact()
			c.mutate(&a)
			err := a.Validate()
			if err == nil {
				t.Fatal("invalid artifact accepted")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestWriteRefusesInvalidArtifact(t *testing.T) {
	a := validArtifact()
	a.Schema = "bogus"
	var buf bytes.Buffer
	if err := a.Write(&buf); err == nil {
		t.Fatal("invalid artifact written")
	}
	if buf.Len() != 0 {
		t.Errorf("partial artifact written: %q", buf.String())
	}
}

func TestReadArtifactRejectsUnknownFields(t *testing.T) {
	if _, err := ReadArtifact(strings.NewReader(`{"schema":"igpucomm.perfbench/v1","surprise":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestArtifactName(t *testing.T) {
	at := time.Date(2026, 8, 5, 12, 30, 45, 0, time.UTC)
	if got := ArtifactName(at); got != "BENCH_20260805T123045Z.json" {
		t.Errorf("ArtifactName = %q", got)
	}
}

func TestFormatTableListsEveryScenario(t *testing.T) {
	out := FormatTable(validArtifact())
	for _, want := range []string{"a", "b", "median", "mad", "p95"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
