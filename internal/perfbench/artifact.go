package perfbench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"igpucomm/internal/buildinfo"
)

// SchemaVersion identifies the artifact format. Consumers must reject
// artifacts whose schema field differs: the trajectory is only comparable
// within one schema generation.
const SchemaVersion = "igpucomm.perfbench/v1"

// Host records the machine facts a reader needs before trusting a
// cross-artifact comparison — numbers from different hosts are a hardware
// comparison, not a regression signal.
type Host struct {
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// CurrentHost snapshots the running machine.
func CurrentHost() Host {
	return Host{
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// ScenarioResult is one scenario's measured trajectory point. All timing
// fields are nanoseconds per iteration.
type ScenarioResult struct {
	Name      string `json:"name"`
	Component string `json:"component"`
	Doc       string `json:"doc,omitempty"`
	// Unit is always "ns"; it is recorded so a future schema bump can
	// change it without ambiguity in old artifacts.
	Unit       string  `json:"unit"`
	Iterations int     `json:"iterations"`
	MedianNS   float64 `json:"median_ns"`
	MADNS      float64 `json:"mad_ns"`
	MinNS      float64 `json:"min_ns"`
	P95NS      float64 `json:"p95_ns"`
	// SamplesNS preserves the raw per-iteration timings so later analyses
	// can recompute any statistic.
	SamplesNS []float64 `json:"samples_ns,omitempty"`
}

// Artifact is one complete harness run: the BENCH_<timestamp>.json payload.
type Artifact struct {
	Schema     string           `json:"schema"`
	CreatedAt  string           `json:"created_at"` // RFC3339 UTC
	Build      buildinfo.Info   `json:"build"`
	Host       Host             `json:"host"`
	Quick      bool             `json:"quick"`
	Iterations int              `json:"iterations"`
	Scenarios  []ScenarioResult `json:"scenarios"`
}

// Validate checks the artifact is internally consistent: correct schema,
// parseable timestamp, unique scenario names, and per-scenario statistics
// that are finite, non-negative and ordered (min <= median <= p95).
func (a Artifact) Validate() error {
	if a.Schema != SchemaVersion {
		return fmt.Errorf("perfbench: artifact schema %q, want %q", a.Schema, SchemaVersion)
	}
	if _, err := time.Parse(time.RFC3339, a.CreatedAt); err != nil {
		return fmt.Errorf("perfbench: artifact created_at: %w", err)
	}
	if a.Iterations <= 0 {
		return fmt.Errorf("perfbench: artifact iterations = %d, want > 0", a.Iterations)
	}
	if len(a.Scenarios) == 0 {
		return fmt.Errorf("perfbench: artifact has no scenarios")
	}
	seen := make(map[string]bool, len(a.Scenarios))
	for _, s := range a.Scenarios {
		if s.Name == "" {
			return fmt.Errorf("perfbench: artifact scenario with empty name")
		}
		if seen[s.Name] {
			return fmt.Errorf("perfbench: artifact scenario %q appears twice", s.Name)
		}
		seen[s.Name] = true
		if s.Unit != "ns" {
			return fmt.Errorf("perfbench: scenario %q unit %q, want ns", s.Name, s.Unit)
		}
		if s.Iterations <= 0 {
			return fmt.Errorf("perfbench: scenario %q iterations = %d, want > 0", s.Name, s.Iterations)
		}
		for _, v := range []struct {
			what string
			val  float64
		}{
			{"median_ns", s.MedianNS},
			{"mad_ns", s.MADNS},
			{"min_ns", s.MinNS},
			{"p95_ns", s.P95NS},
		} {
			if math.IsNaN(v.val) || math.IsInf(v.val, 0) || v.val < 0 {
				return fmt.Errorf("perfbench: scenario %q %s = %v, want finite and >= 0", s.Name, v.what, v.val)
			}
		}
		if s.MinNS > s.MedianNS || s.MedianNS > s.P95NS {
			return fmt.Errorf("perfbench: scenario %q statistics not ordered: min %v, median %v, p95 %v",
				s.Name, s.MinNS, s.MedianNS, s.P95NS)
		}
		if len(s.SamplesNS) > 0 && len(s.SamplesNS) != s.Iterations {
			return fmt.Errorf("perfbench: scenario %q has %d samples for %d iterations",
				s.Name, len(s.SamplesNS), s.Iterations)
		}
	}
	return nil
}

// Scenario returns the named scenario result and whether it exists.
func (a Artifact) Scenario(name string) (ScenarioResult, bool) {
	for _, s := range a.Scenarios {
		if s.Name == name {
			return s, true
		}
	}
	return ScenarioResult{}, false
}

// Write encodes the artifact as indented JSON. The artifact is validated
// first so an invalid run can never poison the trajectory on disk.
func (a Artifact) Write(w io.Writer) error {
	if err := a.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// WriteFile writes the artifact to path, creating parent directories.
func (a Artifact) WriteFile(path string) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("perfbench: %w", err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("perfbench: %w", err)
	}
	if err := a.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadArtifact decodes and validates an artifact.
func ReadArtifact(r io.Reader) (Artifact, error) {
	var a Artifact
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&a); err != nil {
		return Artifact{}, fmt.Errorf("perfbench: decode artifact: %w", err)
	}
	if err := a.Validate(); err != nil {
		return Artifact{}, err
	}
	return a, nil
}

// ReadArtifactFile reads and validates the artifact at path.
func ReadArtifactFile(path string) (Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return Artifact{}, fmt.Errorf("perfbench: %w", err)
	}
	defer f.Close()
	return ReadArtifact(f)
}

// ArtifactName returns the conventional artifact file name for a run that
// started at t: BENCH_<UTC timestamp>.json.
func ArtifactName(t time.Time) string {
	return "BENCH_" + t.UTC().Format("20060102T150405Z") + ".json"
}

// FormatTable renders the human-readable run summary.
func FormatTable(a Artifact) string {
	var b strings.Builder
	mode := "full"
	if a.Quick {
		mode = "quick"
	}
	fmt.Fprintf(&b, "perfbench %s run · %s · %s · %d iterations/scenario\n",
		mode, a.CreatedAt, a.Build.String(), a.Iterations)
	fmt.Fprintf(&b, "%-22s %-10s %5s %12s %12s %12s %12s\n",
		"scenario", "component", "iters", "median", "mad", "min", "p95")
	for _, s := range a.Scenarios {
		fmt.Fprintf(&b, "%-22s %-10s %5d %12s %12s %12s %12s\n",
			s.Name, s.Component, s.Iterations,
			fmtNS(s.MedianNS), fmtNS(s.MADNS), fmtNS(s.MinNS), fmtNS(s.P95NS))
	}
	return b.String()
}

// fmtNS renders nanoseconds with a duration-style unit.
func fmtNS(ns float64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}
