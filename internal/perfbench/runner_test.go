package perfbench

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// fakeScenario records the order its body runs in.
func fakeScenario(name string, order *[]string, fail error) Scenario {
	return Scenario{
		Name:      name,
		Component: "test",
		Prepare: func(context.Context) (func(context.Context) error, func(), error) {
			return func(context.Context) error {
				*order = append(*order, name)
				return fail
			}, nil, nil
		},
	}
}

func TestRunInterleavesRounds(t *testing.T) {
	var order []string
	scenarios := []Scenario{
		fakeScenario("x", &order, nil),
		fakeScenario("y", &order, nil),
	}
	a, err := Run(context.Background(), scenarios, RunOptions{Iterations: 3, Warmup: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// 1 warmup round + 3 timed rounds, each x-then-y.
	want := []string{"x", "y", "x", "y", "x", "y", "x", "y"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("execution order = %v, want interleaved %v", order, want)
	}
	if len(a.Scenarios) != 2 || a.Scenarios[0].Iterations != 3 {
		t.Errorf("artifact shape wrong: %+v", a.Scenarios)
	}
	if err := a.Validate(); err != nil {
		t.Errorf("runner emitted invalid artifact: %v", err)
	}
}

func TestRunRecordsSamplesPerIteration(t *testing.T) {
	var order []string
	a, err := Run(context.Background(), []Scenario{fakeScenario("s", &order, nil)},
		RunOptions{Iterations: 4, Warmup: 0})
	if err != nil {
		t.Fatal(err)
	}
	s := a.Scenarios[0]
	if len(s.SamplesNS) != 4 {
		t.Fatalf("samples = %d, want 4", len(s.SamplesNS))
	}
	for i, v := range s.SamplesNS {
		if v < 0 {
			t.Errorf("sample %d negative: %v", i, v)
		}
	}
	if s.MinNS > s.MedianNS || s.MedianNS > s.P95NS {
		t.Errorf("stats unordered: %+v", s)
	}
}

func TestRunScenarioErrorAborts(t *testing.T) {
	var order []string
	scenarios := []Scenario{fakeScenario("bad", &order, fmt.Errorf("boom"))}
	if _, err := Run(context.Background(), scenarios, RunOptions{Iterations: 2}); err == nil {
		t.Fatal("failing scenario produced an artifact")
	}
}

func TestRunPrepareErrorAborts(t *testing.T) {
	s := Scenario{Name: "p", Component: "test",
		Prepare: func(context.Context) (func(context.Context) error, func(), error) {
			return nil, nil, fmt.Errorf("no deps")
		}}
	if _, err := Run(context.Background(), []Scenario{s}, RunOptions{Iterations: 1}); err == nil {
		t.Fatal("failing Prepare produced an artifact")
	}
}

func TestRunCallsCleanup(t *testing.T) {
	cleaned := false
	s := Scenario{Name: "c", Component: "test",
		Prepare: func(context.Context) (func(context.Context) error, func(), error) {
			return func(context.Context) error { return nil },
				func() { cleaned = true }, nil
		}}
	if _, err := Run(context.Background(), []Scenario{s}, RunOptions{Iterations: 1}); err != nil {
		t.Fatal(err)
	}
	if !cleaned {
		t.Error("cleanup not called")
	}
}

func TestRunRejectsDuplicateNames(t *testing.T) {
	var order []string
	scenarios := []Scenario{
		fakeScenario("dup", &order, nil),
		fakeScenario("dup", &order, nil),
	}
	if _, err := Run(context.Background(), scenarios, RunOptions{Iterations: 1}); err == nil {
		t.Fatal("duplicate scenario names accepted")
	}
}

func TestRunStampsMetadata(t *testing.T) {
	var order []string
	now := time.Date(2026, 8, 5, 9, 0, 0, 0, time.UTC)
	a, err := Run(context.Background(), []Scenario{fakeScenario("m", &order, nil)},
		RunOptions{Iterations: 1, Quick: true, Now: func() time.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}
	if a.CreatedAt != "2026-08-05T09:00:00Z" {
		t.Errorf("created_at = %q", a.CreatedAt)
	}
	if !a.Quick {
		t.Error("quick flag not recorded")
	}
	if a.Host.NumCPU <= 0 || a.Host.GoVersion == "" {
		t.Errorf("host metadata missing: %+v", a.Host)
	}
	if a.Build.Main == "" {
		t.Errorf("build metadata missing: %+v", a.Build)
	}
}
