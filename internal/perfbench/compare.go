package perfbench

import (
	"fmt"
	"strings"
	"time"
)

// Thresholds is the noise gate for baseline/candidate comparisons. A
// scenario only counts as regressed (or improved) when its median delta
// clears BOTH guards:
//
//   - the relative guard, |delta| > RelPct% of the baseline median, and
//   - the absolute floor, |delta| > AbsFloor.
//
// The floor is what keeps micro-scenarios honest: a 50µs scenario can move
// 40% between runs on scheduler jitter alone, but that 20µs swing never
// clears a 200µs floor. Conversely a multi-second scenario that slips 5%
// fails the relative guard, never mind how many milliseconds that is.
type Thresholds struct {
	// RelPct is the relative guard in percent (10 means 10%).
	RelPct float64
	// AbsFloor is the absolute guard.
	AbsFloor time.Duration
}

// DefaultThresholds is the gate CI uses: 10% relative and a 200µs floor.
func DefaultThresholds() Thresholds {
	return Thresholds{RelPct: 10, AbsFloor: 200 * time.Microsecond}
}

// Validate rejects nonsensical thresholds.
func (t Thresholds) Validate() error {
	if t.RelPct < 0 {
		return fmt.Errorf("perfbench: relative threshold %v%%, want >= 0", t.RelPct)
	}
	if t.AbsFloor < 0 {
		return fmt.Errorf("perfbench: absolute floor %v, want >= 0", t.AbsFloor)
	}
	return nil
}

// Delta statuses.
const (
	StatusRegressed   = "regressed"    // slower beyond both guards
	StatusImproved    = "improved"     // faster beyond both guards
	StatusWithinNoise = "within-noise" // inside the noise gate
	StatusAdded       = "added"        // in candidate only
	StatusRemoved     = "removed"      // in baseline only
)

// Delta is one scenario's baseline-to-candidate movement.
type Delta struct {
	Name     string  `json:"name"`
	Status   string  `json:"status"`
	BaseNS   float64 `json:"baseline_median_ns"`
	CandNS   float64 `json:"candidate_median_ns"`
	DeltaNS  float64 `json:"delta_ns"`
	DeltaPct float64 `json:"delta_pct"`
}

// Comparison is the full noise-gated diff of two artifacts, in baseline
// scenario order with candidate-only scenarios appended.
type Comparison struct {
	Thresholds Thresholds `json:"thresholds"`
	Deltas     []Delta    `json:"deltas"`
	// Regressions counts deltas with StatusRegressed; the perfgate exit
	// code is 1 iff this is non-zero (and -warn-only is off).
	Regressions int `json:"regressions"`
}

// Compare diffs candidate against baseline under the thresholds. Scenario
// sets need not match: scenarios present on only one side are reported as
// added/removed and never count as regressions (a removed scenario is a
// review question, not a perf fact).
func Compare(baseline, candidate Artifact, th Thresholds) (Comparison, error) {
	if err := th.Validate(); err != nil {
		return Comparison{}, err
	}
	if baseline.Quick != candidate.Quick {
		return Comparison{}, fmt.Errorf("perfbench: scale mismatch: baseline quick=%v, candidate quick=%v",
			baseline.Quick, candidate.Quick)
	}
	c := Comparison{Thresholds: th}
	for _, b := range baseline.Scenarios {
		cand, ok := candidate.Scenario(b.Name)
		if !ok {
			c.Deltas = append(c.Deltas, Delta{Name: b.Name, Status: StatusRemoved, BaseNS: b.MedianNS})
			continue
		}
		d := Delta{
			Name:    b.Name,
			BaseNS:  b.MedianNS,
			CandNS:  cand.MedianNS,
			DeltaNS: cand.MedianNS - b.MedianNS,
		}
		if b.MedianNS > 0 {
			d.DeltaPct = d.DeltaNS / b.MedianNS * 100
		}
		d.Status = classify(d, th)
		if d.Status == StatusRegressed {
			c.Regressions++
		}
		c.Deltas = append(c.Deltas, d)
	}
	for _, s := range candidate.Scenarios {
		if _, ok := baseline.Scenario(s.Name); !ok {
			c.Deltas = append(c.Deltas, Delta{Name: s.Name, Status: StatusAdded, CandNS: s.MedianNS})
		}
	}
	return c, nil
}

// classify applies the two-guard noise gate to one delta.
func classify(d Delta, th Thresholds) string {
	abs := d.DeltaNS
	if abs < 0 {
		abs = -abs
	}
	pct := d.DeltaPct
	if pct < 0 {
		pct = -pct
	}
	if abs <= float64(th.AbsFloor.Nanoseconds()) || pct <= th.RelPct {
		return StatusWithinNoise
	}
	if d.DeltaNS > 0 {
		return StatusRegressed
	}
	return StatusImproved
}

// FormatComparison renders the human-readable comparison table.
func FormatComparison(c Comparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "perfgate: thresholds rel>%.1f%% AND abs>%s\n", c.Thresholds.RelPct, c.Thresholds.AbsFloor)
	fmt.Fprintf(&b, "%-22s %-13s %12s %12s %12s %8s\n",
		"scenario", "status", "baseline", "candidate", "delta", "delta%")
	for _, d := range c.Deltas {
		switch d.Status {
		case StatusAdded:
			fmt.Fprintf(&b, "%-22s %-13s %12s %12s %12s %8s\n",
				d.Name, d.Status, "-", fmtNS(d.CandNS), "-", "-")
		case StatusRemoved:
			fmt.Fprintf(&b, "%-22s %-13s %12s %12s %12s %8s\n",
				d.Name, d.Status, fmtNS(d.BaseNS), "-", "-", "-")
		default:
			fmt.Fprintf(&b, "%-22s %-13s %12s %12s %12s %+7.1f%%\n",
				d.Name, d.Status, fmtNS(d.BaseNS), fmtNS(d.CandNS),
				signedNS(d.DeltaNS), d.DeltaPct)
		}
	}
	if c.Regressions > 0 {
		fmt.Fprintf(&b, "REGRESSED: %d scenario(s) slower beyond the noise gate\n", c.Regressions)
	} else {
		fmt.Fprintf(&b, "ok: no regressions beyond the noise gate\n")
	}
	return b.String()
}

// signedNS renders a delta with an explicit sign.
func signedNS(ns float64) string {
	if ns < 0 {
		return "-" + fmtNS(-ns)
	}
	return "+" + fmtNS(ns)
}
