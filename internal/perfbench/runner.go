package perfbench

import (
	"context"
	"fmt"
	"io"
	"time"

	"igpucomm/internal/buildinfo"
	"igpucomm/internal/telemetry"
)

// RunOptions configures one harness run.
type RunOptions struct {
	// Iterations is the number of timed runs per scenario (<=0: 5).
	Iterations int
	// Warmup is the number of untimed rounds before measurement begins
	// (<0: 1). Warmup runs bring caches, the page allocator and the
	// branch predictors to steady state.
	Warmup int
	// Quick is recorded in the artifact so baselines at different scales
	// are never compared silently.
	Quick bool
	// Now overrides the artifact timestamp clock (tests). Iteration
	// timing always uses the monotonic runtime clock.
	Now func() time.Time
	// Progress, when non-nil, receives one line per completed round.
	Progress io.Writer
}

// Run prepares every scenario, then measures them with interleaved rounds:
// round r times scenario 1, 2, ..., n once each before round r+1 starts.
// Interleaving decorrelates a scenario's samples from slow drifts (thermal
// throttling, background load) — drift lands evenly across all scenarios
// instead of concentrating in whichever ran last — which is what makes the
// median/MAD statistics comparable across runs.
//
// Every timed iteration is wrapped in a telemetry span and recorded into a
// per-run histogram, so tracing a perfgate run shows the same span shapes
// the service emits. A scenario error aborts the run: partial timings are
// not a trajectory point.
func Run(ctx context.Context, scenarios []Scenario, opt RunOptions) (Artifact, error) {
	if len(scenarios) == 0 {
		return Artifact{}, fmt.Errorf("perfbench: no scenarios")
	}
	if opt.Iterations <= 0 {
		opt.Iterations = 5
	}
	if opt.Warmup < 0 {
		opt.Warmup = 1
	}
	if opt.Now == nil {
		opt.Now = time.Now
	}
	seen := make(map[string]bool, len(scenarios))
	for _, s := range scenarios {
		if s.Name == "" || s.Prepare == nil {
			return Artifact{}, fmt.Errorf("perfbench: scenario %q missing name or Prepare", s.Name)
		}
		if seen[s.Name] {
			return Artifact{}, fmt.Errorf("perfbench: duplicate scenario %q", s.Name)
		}
		seen[s.Name] = true
	}

	reg := telemetry.NewRegistry()
	durations := reg.HistogramVec("igpucomm_perfbench_iteration_seconds",
		"Timed harness iterations, by scenario.", "scenario", nil)

	ctx, runSpan := telemetry.Start(ctx, "perfbench.run",
		telemetry.String("scenarios", fmt.Sprintf("%d", len(scenarios))),
		telemetry.String("iterations", fmt.Sprintf("%d", opt.Iterations)))
	defer runSpan.End()

	bodies := make([]func(context.Context) error, len(scenarios))
	for i, s := range scenarios {
		body, cleanup, err := s.Prepare(ctx)
		if err != nil {
			return Artifact{}, fmt.Errorf("perfbench: prepare %s: %w", s.Name, err)
		}
		if cleanup != nil {
			defer cleanup()
		}
		bodies[i] = body
	}

	for w := 0; w < opt.Warmup; w++ {
		for i, s := range scenarios {
			if err := bodies[i](ctx); err != nil {
				return Artifact{}, fmt.Errorf("perfbench: warmup %s: %w", s.Name, err)
			}
		}
		progress(opt.Progress, "warmup round %d/%d done", w+1, opt.Warmup)
	}

	samples := make([][]float64, len(scenarios))
	for i := range samples {
		samples[i] = make([]float64, 0, opt.Iterations)
	}
	for r := 0; r < opt.Iterations; r++ {
		for i, s := range scenarios {
			iterCtx, span := telemetry.Start(ctx, "perfbench.iteration",
				telemetry.String("scenario", s.Name),
				telemetry.String("round", fmt.Sprintf("%d", r)))
			t0 := time.Now()
			err := bodies[i](iterCtx)
			elapsed := time.Since(t0)
			span.End()
			if err != nil {
				return Artifact{}, fmt.Errorf("perfbench: %s round %d: %w", s.Name, r, err)
			}
			durations.With(s.Name).Observe(elapsed.Seconds())
			samples[i] = append(samples[i], float64(elapsed.Nanoseconds()))
		}
		progress(opt.Progress, "round %d/%d done", r+1, opt.Iterations)
	}

	a := Artifact{
		Schema:     SchemaVersion,
		CreatedAt:  opt.Now().UTC().Format(time.RFC3339),
		Build:      buildinfo.Get(),
		Host:       CurrentHost(),
		Quick:      opt.Quick,
		Iterations: opt.Iterations,
		Scenarios:  make([]ScenarioResult, len(scenarios)),
	}
	for i, s := range scenarios {
		sum := Summarize(samples[i])
		a.Scenarios[i] = ScenarioResult{
			Name:       s.Name,
			Component:  s.Component,
			Doc:        s.Doc,
			Unit:       "ns",
			Iterations: opt.Iterations,
			MedianNS:   sum.Median,
			MADNS:      sum.MAD,
			MinNS:      sum.Min,
			P95NS:      sum.P95,
			SamplesNS:  samples[i],
		}
	}
	if err := a.Validate(); err != nil {
		return Artifact{}, err
	}
	return a, nil
}

func progress(w io.Writer, format string, args ...interface{}) {
	if w != nil {
		fmt.Fprintf(w, format+"\n", args...)
	}
}
