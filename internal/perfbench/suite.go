package perfbench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"

	"igpucomm/internal/advisord"
	"igpucomm/internal/advisord/client"
	"igpucomm/internal/apps/catalog"
	"igpucomm/internal/comm"
	"igpucomm/internal/devices"
	"igpucomm/internal/engine"
	"igpucomm/internal/fleet"
	"igpucomm/internal/framework"
	"igpucomm/internal/microbench"
	"igpucomm/internal/soc"
)

// SuiteOptions selects the scale and parallelism of the declared suite.
type SuiteOptions struct {
	// Quick runs the reduced micro-benchmark params and workload scale
	// (the same reduction -quick applies everywhere else in the repo).
	Quick bool
	// Workers bounds the engine's simulation parallelism (<=0: GOMAXPROCS).
	Workers int
}

func (o SuiteOptions) params() microbench.Params {
	if o.Quick {
		return microbench.TestParams()
	}
	return microbench.DefaultParams()
}

func (o SuiteOptions) scale() catalog.Scale {
	if o.Quick {
		return catalog.Quick
	}
	return catalog.Full
}

// combo is one device x app sweep point.
type combo struct {
	cfg soc.Config
	w   comm.Workload
}

// sweepCombos builds the 9 device x app points; with the extended model set
// (comm.AllModels, 5 models) a sweep over them is the repo's canonical
// 45-point workload.
func sweepCombos(scale catalog.Scale) ([]combo, error) {
	var combos []combo
	for _, cfg := range devices.All() {
		for _, app := range catalog.Names() {
			w, err := catalog.ByName(app, scale)
			if err != nil {
				return nil, err
			}
			combos = append(combos, combo{cfg: cfg, w: w})
		}
	}
	return combos, nil
}

// DefaultSuite declares the scenarios perfgate runs: the serial-vs-engine
// 45-combo sweep, the memo cache cold and warm, the three
// device-characterization micro-benchmark phases, advisord request latency
// over a real HTTP round trip, and checked-mode overhead against the plain
// model run it wraps.
func DefaultSuite(opt SuiteOptions) ([]Scenario, error) {
	params := opt.params()
	combos, err := sweepCombos(opt.scale())
	if err != nil {
		return nil, fmt.Errorf("perfbench: %w", err)
	}
	tx2, err := devices.ByName(devices.TX2Name)
	if err != nil {
		return nil, fmt.Errorf("perfbench: %w", err)
	}
	shwfs, err := catalog.ByName("shwfs", opt.scale())
	if err != nil {
		return nil, fmt.Errorf("perfbench: %w", err)
	}

	scenarios := []Scenario{
		{
			Name:      "sweep/serial",
			Component: "framework",
			Doc:       "serial 45-point device x app x model exploration (the seed path)",
			Prepare: func(context.Context) (func(context.Context) error, func(), error) {
				return func(context.Context) error {
					for _, c := range combos {
						if _, err := framework.Explore(soc.New(c.cfg), c.w, comm.AllModels()); err != nil {
							return err
						}
					}
					return nil
				}, nil, nil
			},
		},
		{
			Name:      "sweep/engine",
			Component: "engine",
			Doc:       "engine 45-point exploration, models fanned out across clones",
			Prepare: func(context.Context) (func(context.Context) error, func(), error) {
				eng := engine.New(engine.Options{Workers: opt.Workers})
				return func(ctx context.Context) error {
					for _, c := range combos {
						if _, err := eng.Explore(ctx, c.cfg, c.w, comm.AllModels()); err != nil {
							return err
						}
					}
					return nil
				}, nil, nil
			},
		},
		{
			Name:      "sweep/engine-batch",
			Component: "engine",
			Doc:       "steady-state engine sweep: platform pool and compiled-kernel caches primed, iterations replay batch kernels",
			Prepare: func(ctx context.Context) (func(context.Context) error, func(), error) {
				eng := engine.New(engine.Options{Workers: opt.Workers})
				// One priming sweep: fills the platform pool and, through
				// it, each GPU's compiled-kernel cache, so the measured
				// iterations are the advisory service's steady state.
				for _, c := range combos {
					if _, err := eng.Explore(ctx, c.cfg, c.w, comm.AllModels()); err != nil {
						return nil, nil, err
					}
				}
				return func(ctx context.Context) error {
					for _, c := range combos {
						if _, err := eng.Explore(ctx, c.cfg, c.w, comm.AllModels()); err != nil {
							return err
						}
					}
					return nil
				}, nil, nil
			},
		},
		{
			Name:      "sweep/engine-heatmap",
			Component: "engine",
			Doc:       "steady-state engine sweep with per-buffer heat recording enabled — the cost of the observability overlay",
			Prepare: func(ctx context.Context) (func(context.Context) error, func(), error) {
				eng := engine.New(engine.Options{Workers: opt.Workers})
				// Prime heat-enabled so the pooled platforms already carry
				// their accumulators and the measured iterations see the
				// steady-state record path, not allocation.
				for _, c := range combos {
					if _, err := eng.ExploreHeat(ctx, c.cfg, c.w, comm.AllModels()); err != nil {
						return nil, nil, err
					}
				}
				return func(ctx context.Context) error {
					for _, c := range combos {
						if _, err := eng.ExploreHeat(ctx, c.cfg, c.w, comm.AllModels()); err != nil {
							return err
						}
					}
					return nil
				}, nil, nil
			},
		},
		{
			Name:      "memo/cold",
			Component: "engine",
			Doc:       "characterize all devices on a cold memo cache (fresh engine per iteration)",
			Prepare: func(context.Context) (func(context.Context) error, func(), error) {
				return func(ctx context.Context) error {
					eng := engine.New(engine.Options{Workers: opt.Workers})
					for _, cfg := range devices.All() {
						if _, err := eng.Characterize(ctx, cfg, params); err != nil {
							return err
						}
					}
					return nil
				}, nil, nil
			},
		},
		{
			Name:      "memo/warm",
			Component: "engine",
			Doc:       "characterize all devices against a primed memo cache (pure hits)",
			Prepare: func(ctx context.Context) (func(context.Context) error, func(), error) {
				eng := engine.New(engine.Options{Workers: opt.Workers})
				for _, cfg := range devices.All() {
					if _, err := eng.Characterize(ctx, cfg, params); err != nil {
						return nil, nil, err
					}
				}
				return func(ctx context.Context) error {
					for _, cfg := range devices.All() {
						if _, err := eng.Characterize(ctx, cfg, params); err != nil {
							return err
						}
					}
					return nil
				}, nil, nil
			},
		},
		{
			Name:      "microbench/mb1",
			Component: "microbench",
			Doc:       "MB1 cache-throughput phase on the TX2 catalog entry",
			Prepare: func(context.Context) (func(context.Context) error, func(), error) {
				return func(ctx context.Context) error {
					_, err := microbench.RunMB1(ctx, soc.New(tx2), params)
					return err
				}, nil, nil
			},
		},
		{
			Name:      "microbench/mb2",
			Component: "microbench",
			Doc:       "MB2 density-sweep phase on the TX2 catalog entry",
			Prepare: func(ctx context.Context) (func(context.Context) error, func(), error) {
				mb1, err := microbench.RunMB1(ctx, soc.New(tx2), params)
				if err != nil {
					return nil, nil, err
				}
				peak := mb1.PeakThroughput()
				return func(ctx context.Context) error {
					_, err := microbench.RunMB2(ctx, soc.New(tx2), params, peak)
					return err
				}, nil, nil
			},
		},
		{
			Name:      "mb2/compiled-run",
			Component: "microbench",
			Doc:       "MB2 density sweep on one persistent platform (compiled-kernel replay steady state)",
			Prepare: func(ctx context.Context) (func(context.Context) error, func(), error) {
				s := soc.New(tx2)
				mb1, err := microbench.RunMB1(ctx, s, params)
				if err != nil {
					return nil, nil, err
				}
				peak := mb1.PeakThroughput()
				if _, err := microbench.RunMB2(ctx, s, params, peak); err != nil {
					return nil, nil, err
				}
				return func(ctx context.Context) error {
					_, err := microbench.RunMB2(ctx, s, params, peak)
					return err
				}, nil, nil
			},
		},
		{
			Name:      "microbench/mb3",
			Component: "microbench",
			Doc:       "MB3 overlap phase on the TX2 catalog entry",
			Prepare: func(context.Context) (func(context.Context) error, func(), error) {
				return func(ctx context.Context) error {
					_, err := microbench.RunMB3(ctx, soc.New(tx2), params)
					return err
				}, nil, nil
			},
		},
		{
			Name:      "comm/run",
			Component: "comm",
			Doc:       "plain ZC model run of shwfs on TX2 (checked-mode baseline)",
			Prepare: func(context.Context) (func(context.Context) error, func(), error) {
				return func(context.Context) error {
					_, err := comm.ZC{}.Run(soc.New(tx2), shwfs)
					return err
				}, nil, nil
			},
		},
		{
			Name:      "comm/checked",
			Component: "comm",
			Doc:       "same run under CheckedRun (hazard verification on the hot path)",
			Prepare: func(context.Context) (func(context.Context) error, func(), error) {
				return func(ctx context.Context) error {
					_, err := comm.CheckedRun(ctx, soc.New(tx2), shwfs, comm.ZC{})
					return err
				}, nil, nil
			},
		},
		advisordScenario(opt),
		fleetScenario(opt),
	}
	return scenarios, nil
}

// advisordScenario measures one warm /v1/advise batch over a real HTTP
// round trip: JSON encode, TCP loopback, the observability middleware, the
// engine batch (all characterizations cached after warmup), JSON decode.
func advisordScenario(opt SuiteOptions) Scenario {
	return Scenario{
		Name:      "advisord/advise",
		Component: "advisord",
		Doc:       "warm 3-device /v1/advise batch over loopback HTTP (httptest)",
		Prepare: func(context.Context) (func(context.Context) error, func(), error) {
			eng := engine.New(engine.Options{Workers: opt.Workers})
			logger := slog.New(slog.NewTextHandler(io.Discard, nil))
			srv := advisord.New(eng, advisord.Options{Params: opt.params(), Scale: opt.scale(), Logger: logger})
			ts := httptest.NewServer(srv.Handler())

			var reqs []map[string]string
			for _, cfg := range devices.All() {
				reqs = append(reqs, map[string]string{
					"device": cfg.Name, "app": "shwfs", "current": "sc",
				})
			}
			body, err := json.Marshal(map[string]interface{}{"requests": reqs})
			if err != nil {
				ts.Close()
				return nil, nil, err
			}

			run := func(ctx context.Context) error {
				req, err := http.NewRequestWithContext(ctx, http.MethodPost,
					ts.URL+"/v1/advise", bytes.NewReader(body))
				if err != nil {
					return err
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := ts.Client().Do(req)
				if err != nil {
					return err
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					return fmt.Errorf("advise status %d", resp.StatusCode)
				}
				var out struct {
					Results []struct {
						Error string `json:"error"`
					} `json:"results"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					return err
				}
				for _, r := range out.Results {
					if r.Error != "" {
						return fmt.Errorf("advise result error: %s", r.Error)
					}
				}
				return nil
			}
			return run, ts.Close, nil
		},
	}
}

// fleetScenario measures the same warm 3-device advise batch routed through
// a 3-shard httptest fleet by the shard-aware client: per-question key
// hashing, split-by-owner grouping, and up to three loopback round trips
// instead of advisord/advise's one. The routed-advise-2x relation bounds
// that routing tax.
func fleetScenario(opt SuiteOptions) Scenario {
	return Scenario{
		Name:      "fleet/routed-advise",
		Component: "fleet",
		Doc:       "warm 3-device advise batch routed across a 3-shard httptest fleet",
		Prepare: func(ctx context.Context) (func(context.Context) error, func(), error) {
			logger := slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError}))
			ids := []string{"bench-a", "bench-b", "bench-c"}
			var servers []*httptest.Server
			var states []*fleet.State
			closeAll := func() {
				for _, ts := range servers {
					ts.Close()
				}
			}
			for _, id := range ids {
				st, err := fleet.NewState(id, []fleet.Shard{{ID: id, URL: "http://placeholder.invalid"}}, 0)
				if err != nil {
					closeAll()
					return nil, nil, err
				}
				eng := engine.New(engine.Options{Workers: opt.Workers, KeyRole: st.KeyRole})
				srv := advisord.New(eng, advisord.Options{
					Params: opt.params(), Scale: opt.scale(), Logger: logger, Fleet: st,
				})
				servers = append(servers, httptest.NewServer(srv.Handler()))
				states = append(states, st)
			}
			members := make([]fleet.Shard, len(ids))
			for i, id := range ids {
				members[i] = fleet.Shard{ID: id, URL: servers[i].URL}
			}
			for _, st := range states {
				if err := st.SetShards(members); err != nil {
					closeAll()
					return nil, nil, err
				}
			}
			rt, err := fleet.NewRouter(fleet.RouterOptions{Shards: members})
			if err != nil {
				closeAll()
				return nil, nil, err
			}
			cl := client.New(client.Options{Fleet: rt, Params: opt.params()})

			var body advisord.AdviseBody
			for _, cfg := range devices.All() {
				body.Requests = append(body.Requests,
					advisord.AdviseRequest{Device: cfg.Name, App: "shwfs", Current: "sc"})
			}
			run := func(ctx context.Context) error {
				resp, err := cl.Advise(ctx, body)
				if err != nil {
					return err
				}
				for _, r := range resp.Results {
					if r.Error != "" {
						return fmt.Errorf("advise result error: %s", r.Error)
					}
				}
				return nil
			}
			// One warm pass so every shard characterizes its owned devices
			// before the clock starts, mirroring advisord/advise's warmup.
			if err := run(ctx); err != nil {
				closeAll()
				return nil, nil, err
			}
			return run, closeAll, nil
		},
	}
}
