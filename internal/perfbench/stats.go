package perfbench

import "sort"

// Summary is the robust per-scenario statistics bundle. All values are
// nanoseconds. Median and MAD (median absolute deviation) locate and scale
// the distribution without being dragged by outliers; Min is the "best
// achievable" floor; P95 captures the tail a latency SLO would feel.
type Summary struct {
	Median float64
	MAD    float64
	Min    float64
	P95    float64
}

// Summarize computes the robust statistics over one scenario's samples.
// It panics on an empty slice (the runner never produces one).
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		panic("perfbench: summarize of no samples")
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	med := medianSorted(sorted)
	dev := make([]float64, len(sorted))
	for i, v := range sorted {
		d := v - med
		if d < 0 {
			d = -d
		}
		dev[i] = d
	}
	sort.Float64s(dev)
	return Summary{
		Median: med,
		MAD:    medianSorted(dev),
		Min:    sorted[0],
		P95:    percentileSorted(sorted, 95),
	}
}

// medianSorted returns the median of an ascending slice (mean of the two
// middle elements for even lengths).
func medianSorted(s []float64) float64 {
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// percentileSorted returns the nearest-rank p-th percentile of an ascending
// slice: the smallest element with at least p% of the samples at or below
// it, so it is always an observed value.
func percentileSorted(s []float64, p float64) float64 {
	n := len(s)
	rank := int(float64(n)*p/100 + 0.9999999999)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return s[rank-1]
}
