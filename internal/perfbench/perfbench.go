// Package perfbench is the repo's performance-regression harness: a declared
// suite of scenarios covering every hot path the ROADMAP cares about (the
// serial-vs-parallel advisory sweep, the engine's memo cache warm and cold,
// the three device-characterization micro-benchmarks, advisord request
// latency over real HTTP, and checked-mode overhead), executed with repeated
// interleaved iterations and summarized with robust statistics (median, MAD,
// min, p95).
//
// A run emits a schema-versioned BENCH_<timestamp>.json artifact — the
// machine-readable perf trajectory cmd/perfgate compares across commits —
// annotated with build identity, host facts and iteration metadata. The
// comparison is noise-aware: a scenario only counts as a regression when its
// median slowdown exceeds both a relative percentage and an absolute floor,
// so micro-scenarios cannot flap on scheduler jitter.
//
// Timing capture goes through internal/telemetry: every timed iteration is
// recorded into a per-run histogram vec and wrapped in a span, so a traced
// perfgate run can be inspected with the same tooling as the service.
package perfbench

import "context"

// Scenario is one named, repeatable measurement.
type Scenario struct {
	// Name identifies the scenario in artifacts and comparisons; it must
	// be unique within a suite and stable across commits (renaming one
	// breaks its trajectory).
	Name string
	// Component is the layer the scenario exercises ("engine",
	// "framework", "microbench", "comm", "advisord").
	Component string
	// Doc is a one-line description for the human table.
	Doc string
	// Prepare performs untimed setup and returns the timed body plus an
	// optional cleanup (nil when there is nothing to tear down). The body
	// is invoked once per iteration; everything it does is on the clock.
	Prepare func(ctx context.Context) (body func(ctx context.Context) error, cleanup func(), err error)
}
