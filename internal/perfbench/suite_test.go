package perfbench

import (
	"bytes"
	"context"
	"testing"
)

// TestQuickSuiteEmitsValidArtifact is the end-to-end acceptance check behind
// `perfgate -run -quick`: the real declared suite, at quick scale, must
// produce an artifact that survives the schema round trip. One iteration and
// no warmup keeps this a smoke test, not a benchmark.
func TestQuickSuiteEmitsValidArtifact(t *testing.T) {
	suite, err := DefaultSuite(SuiteOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(context.Background(), suite, RunOptions{Iterations: 1, Warmup: 0, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Write(&buf); err != nil {
		t.Fatalf("artifact failed schema validation: %v", err)
	}
	if _, err := ReadArtifact(&buf); err != nil {
		t.Fatalf("artifact failed round trip: %v", err)
	}

	want := []string{
		"sweep/serial", "sweep/engine", "sweep/engine-batch",
		"sweep/engine-heatmap",
		"memo/cold", "memo/warm",
		"microbench/mb1", "microbench/mb2", "microbench/mb3",
		"mb2/compiled-run",
		"comm/run", "comm/checked",
		"advisord/advise",
		"fleet/routed-advise",
	}
	if len(a.Scenarios) != len(want) {
		t.Fatalf("suite has %d scenarios, want %d", len(a.Scenarios), len(want))
	}
	for _, name := range want {
		s, ok := a.Scenario(name)
		if !ok {
			t.Errorf("suite missing scenario %q", name)
			continue
		}
		if s.MedianNS <= 0 {
			t.Errorf("%s median = %v, want > 0", name, s.MedianNS)
		}
	}
}

// TestSuiteScenariosDeclareComponents keeps the component labels — the axis
// BENCHMARKS.md groups the trajectory by — from silently going stale.
func TestSuiteScenariosDeclareComponents(t *testing.T) {
	suite, err := DefaultSuite(SuiteOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{
		"framework": true, "engine": true, "microbench": true,
		"comm": true, "advisord": true, "fleet": true,
	}
	for _, s := range suite {
		if s.Doc == "" {
			t.Errorf("%s has no doc line", s.Name)
		}
		if !known[s.Component] {
			t.Errorf("%s has unknown component %q", s.Name, s.Component)
		}
	}
}
