package perfbench

import (
	"fmt"
	"strings"
	"time"
)

// Relation is a cross-scenario performance invariant checked within ONE
// artifact, complementing the baseline comparison: Compare catches drift
// between runs, a Relation pins an ordering the design promises regardless
// of drift — "the pooled engine sweep beats the serial sweep", "the
// steady-state batch sweep stays 5x under the seed". Violations gate CI
// exactly like regressions.
type Relation struct {
	// Name identifies the invariant in reports.
	Name string `json:"name"`
	// Scenario is the scenario under test.
	Scenario string `json:"scenario"`
	// Reference, when non-empty, names the scenario whose median bounds
	// Scenario's: median(Scenario) <= MaxRatio * median(Reference).
	Reference string  `json:"reference,omitempty"`
	MaxRatio  float64 `json:"max_ratio,omitempty"`
	// MaxMedian, when non-zero, caps median(Scenario) absolutely. Absolute
	// caps are only meaningful at the scale they were calibrated for, so
	// they apply to quick artifacts only (the scale CI runs).
	MaxMedian time.Duration `json:"max_median,omitempty"`
	// Doc says what the invariant means and why it holds.
	Doc string `json:"doc"`
}

// seedSerialMedianNS is the committed quick-scale sweep/serial median of the
// pre-batch-kernel simulator core (the per-access interface-dispatch path).
// The batch core's headline promise is calibrated against it.
const seedSerialMedianNS = 435270729

// DefaultRelations are the invariants perfgate enforces on every artifact
// it runs or accepts as a candidate.
func DefaultRelations() []Relation {
	return []Relation{
		{
			Name:      "engine-beats-serial",
			Scenario:  "sweep/engine",
			Reference: "sweep/serial",
			MaxRatio:  1.0,
			Doc:       "the engine's pooled exploration must not lose to the serial framework sweep it parallelizes",
		},
		{
			Name:      "engine-batch-beats-serial",
			Scenario:  "sweep/engine-batch",
			Reference: "sweep/serial",
			MaxRatio:  1.0,
			Doc:       "the steady-state pooled sweep (warm compiled-kernel caches) must beat the fresh-platform serial sweep",
		},
		{
			Name:      "engine-batch-5x-vs-seed",
			Scenario:  "sweep/engine-batch",
			MaxMedian: seedSerialMedianNS / 5 * time.Nanosecond,
			Doc:       "steady-state batch-kernel sweep stays >=5x under the seed simulator's serial median (435.3ms quick scale)",
		},
		{
			Name:      "heatmap-overhead-bounded",
			Scenario:  "sweep/engine-heatmap",
			Reference: "sweep/engine-batch",
			MaxRatio:  1.5,
			Doc:       "heat recording may cost at most 50% over the heat-free batch sweep; the DISABLED path's cost is pinned separately by engine-batch-5x-vs-seed, which sweep/engine-batch runs with the nil-check branch compiled in",
		},
		{
			Name:      "memo-warm-beats-cold",
			Scenario:  "memo/warm",
			Reference: "memo/cold",
			MaxRatio:  1.0,
			Doc:       "a primed memo cache must answer characterizations faster than cold simulation",
		},
		{
			Name:      "routed-advise-2x",
			Scenario:  "fleet/routed-advise",
			Reference: "advisord/advise",
			MaxRatio:  2.0,
			Doc:       "routing a warm advise batch across a 3-shard fleet (key hashing, per-owner grouping, up to 3 loopback hops) may cost at most 2x the single-process advise path",
		},
	}
}

// RelationResult is one relation evaluated against an artifact.
type RelationResult struct {
	Relation Relation `json:"relation"`
	// Status is "ok", "violated", or "skipped" (scenario absent, or a
	// quick-only bound against a full-scale artifact).
	Status string `json:"status"`
	// Detail explains the outcome with the measured numbers.
	Detail string `json:"detail"`
}

// Relation statuses.
const (
	RelationOK       = "ok"
	RelationViolated = "violated"
	RelationSkipped  = "skipped"
)

// CheckRelations evaluates the relations against the artifact. Violations
// are counted by the second return; absent scenarios skip their relations
// (an artifact from an older suite is a review question, not a perf fact).
func CheckRelations(a Artifact, rels []Relation) ([]RelationResult, int) {
	var out []RelationResult
	violations := 0
	for _, r := range rels {
		res := checkRelation(a, r)
		if res.Status == RelationViolated {
			violations++
		}
		out = append(out, res)
	}
	return out, violations
}

func checkRelation(a Artifact, r Relation) RelationResult {
	res := RelationResult{Relation: r}
	s, ok := a.Scenario(r.Scenario)
	if !ok {
		res.Status = RelationSkipped
		res.Detail = fmt.Sprintf("scenario %s not in artifact", r.Scenario)
		return res
	}
	if r.MaxMedian > 0 {
		if !a.Quick {
			res.Status = RelationSkipped
			res.Detail = "absolute bound is quick-scale only"
			return res
		}
		if s.MedianNS > float64(r.MaxMedian.Nanoseconds()) {
			res.Status = RelationViolated
			res.Detail = fmt.Sprintf("%s median %s exceeds cap %s",
				r.Scenario, fmtNS(s.MedianNS), r.MaxMedian)
			return res
		}
		res.Status = RelationOK
		res.Detail = fmt.Sprintf("%s median %s within cap %s",
			r.Scenario, fmtNS(s.MedianNS), r.MaxMedian)
		return res
	}
	ref, ok := a.Scenario(r.Reference)
	if !ok {
		res.Status = RelationSkipped
		res.Detail = fmt.Sprintf("reference %s not in artifact", r.Reference)
		return res
	}
	bound := r.MaxRatio * ref.MedianNS
	if s.MedianNS > bound {
		res.Status = RelationViolated
		res.Detail = fmt.Sprintf("%s median %s exceeds %.2fx %s median %s",
			r.Scenario, fmtNS(s.MedianNS), r.MaxRatio, r.Reference, fmtNS(ref.MedianNS))
		return res
	}
	res.Status = RelationOK
	res.Detail = fmt.Sprintf("%s median %s <= %.2fx %s median %s",
		r.Scenario, fmtNS(s.MedianNS), r.MaxRatio, r.Reference, fmtNS(ref.MedianNS))
	return res
}

// FormatRelations renders the relation report.
func FormatRelations(results []RelationResult, violations int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "perfgate: %d relation(s)\n", len(results))
	for _, r := range results {
		fmt.Fprintf(&b, "%-26s %-9s %s\n", r.Relation.Name, r.Status, r.Detail)
	}
	if violations > 0 {
		fmt.Fprintf(&b, "VIOLATED: %d relation(s)\n", violations)
	} else {
		fmt.Fprintf(&b, "ok: all relations hold\n")
	}
	return b.String()
}
