package perfbench

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func readFixture(t *testing.T, name string) Artifact {
	t.Helper()
	a, err := ReadArtifactFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("fixture %s: %v", name, err)
	}
	return a
}

func statuses(c Comparison) map[string]string {
	m := make(map[string]string, len(c.Deltas))
	for _, d := range c.Deltas {
		m[d.Name] = d.Status
	}
	return m
}

// The three golden comparisons mirror the CI contract: a >=20% slowdown on a
// macro scenario fails the gate, a run inside the noise envelope passes, and
// improvements are labeled without affecting the exit code.

func TestCompareRegressionFixture(t *testing.T) {
	base := readFixture(t, "baseline.json")
	cand := readFixture(t, "candidate_regressed.json")
	c, err := Compare(base, cand, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if c.Regressions != 1 {
		t.Fatalf("regressions = %d, want 1\n%s", c.Regressions, FormatComparison(c))
	}
	got := statuses(c)
	if got["sweep/engine"] != StatusRegressed {
		t.Errorf("sweep/engine status = %s, want regressed (+25%%, +25ms)", got["sweep/engine"])
	}
	if got["memo/warm"] != StatusWithinNoise || got["comm/checked"] != StatusWithinNoise {
		t.Errorf("unchanged scenarios flagged: %v", got)
	}
}

func TestCompareWithinNoiseFixture(t *testing.T) {
	base := readFixture(t, "baseline.json")
	cand := readFixture(t, "candidate_noise.json")
	c, err := Compare(base, cand, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if c.Regressions != 0 {
		t.Fatalf("regressions = %d, want 0\n%s", c.Regressions, FormatComparison(c))
	}
	for _, d := range c.Deltas {
		if d.Status != StatusWithinNoise {
			t.Errorf("%s status = %s, want within-noise", d.Name, d.Status)
		}
	}
}

func TestCompareImprovementFixture(t *testing.T) {
	base := readFixture(t, "baseline.json")
	cand := readFixture(t, "candidate_improved.json")
	c, err := Compare(base, cand, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if c.Regressions != 0 {
		t.Fatalf("regressions = %d, want 0\n%s", c.Regressions, FormatComparison(c))
	}
	got := statuses(c)
	if got["sweep/engine"] != StatusImproved {
		t.Errorf("sweep/engine status = %s, want improved (-30%%)", got["sweep/engine"])
	}
	if got["comm/checked"] != StatusImproved {
		t.Errorf("comm/checked status = %s, want improved (-20%%, -600µs)", got["comm/checked"])
	}
	if got["memo/warm"] != StatusWithinNoise {
		t.Errorf("memo/warm status = %s, want within-noise (-2%%)", got["memo/warm"])
	}
}

// artifactWith builds a minimal valid artifact holding one scenario with the
// given median.
func artifactWith(name string, median float64) Artifact {
	return Artifact{
		Schema:     SchemaVersion,
		CreatedAt:  "2026-08-01T00:00:00Z",
		Quick:      true,
		Iterations: 3,
		Scenarios: []ScenarioResult{{
			Name: name, Component: "test", Unit: "ns", Iterations: 3,
			MedianNS: median, MADNS: 0, MinNS: median, P95NS: median,
		}},
	}
}

// TestAbsoluteFloorSuppressesMicroNoise is the table proof that the
// two-guard gate works: large relative swings on microsecond scenarios stay
// quiet unless they also clear the absolute floor, and large absolute swings
// stay quiet unless they also clear the relative guard.
func TestAbsoluteFloorSuppressesMicroNoise(t *testing.T) {
	cases := []struct {
		name       string
		baseNS     float64
		candNS     float64
		th         Thresholds
		wantStatus string
	}{
		// +60% but only +30µs: under the 200µs floor, suppressed.
		{"micro swing under floor", 50_000, 80_000,
			Thresholds{RelPct: 10, AbsFloor: 200 * time.Microsecond}, StatusWithinNoise},
		// Same swing with no floor: the relative guard alone flags it.
		{"micro swing no floor", 50_000, 80_000,
			Thresholds{RelPct: 10, AbsFloor: 0}, StatusRegressed},
		// -60% micro improvement is equally suppressed by the floor.
		{"micro improvement under floor", 80_000, 50_000,
			Thresholds{RelPct: 10, AbsFloor: 200 * time.Microsecond}, StatusWithinNoise},
		// +5ms on a 100ms scenario is only +5%: the relative guard
		// suppresses it no matter how many milliseconds it is.
		{"macro swing under relative guard", 100_000_000, 105_000_000,
			Thresholds{RelPct: 10, AbsFloor: 200 * time.Microsecond}, StatusWithinNoise},
		// +25% and +25ms clears both guards.
		{"macro regression", 100_000_000, 125_000_000,
			Thresholds{RelPct: 10, AbsFloor: 200 * time.Microsecond}, StatusRegressed},
		// Exactly at the relative threshold is still noise (strict >).
		{"exactly at relative threshold", 100_000_000, 110_000_000,
			Thresholds{RelPct: 10, AbsFloor: 0}, StatusWithinNoise},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cmp, err := Compare(artifactWith("s", c.baseNS), artifactWith("s", c.candNS), c.th)
			if err != nil {
				t.Fatal(err)
			}
			if got := cmp.Deltas[0].Status; got != c.wantStatus {
				t.Errorf("status = %s, want %s (base %v, cand %v, th %+v)",
					got, c.wantStatus, c.baseNS, c.candNS, c.th)
			}
		})
	}
}

func TestCompareAddedAndRemoved(t *testing.T) {
	base := artifactWith("old", 1_000_000)
	cand := artifactWith("new", 1_000_000)
	c, err := Compare(base, cand, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	got := statuses(c)
	if got["old"] != StatusRemoved || got["new"] != StatusAdded {
		t.Errorf("statuses = %v, want old removed / new added", got)
	}
	if c.Regressions != 0 {
		t.Errorf("added/removed counted as regressions: %d", c.Regressions)
	}
}

func TestCompareScaleMismatchRejected(t *testing.T) {
	base := artifactWith("s", 1_000_000)
	cand := artifactWith("s", 1_000_000)
	cand.Quick = false
	if _, err := Compare(base, cand, DefaultThresholds()); err == nil {
		t.Fatal("quick baseline vs full candidate accepted")
	}
}

func TestCompareRejectsBadThresholds(t *testing.T) {
	a := artifactWith("s", 1)
	if _, err := Compare(a, a, Thresholds{RelPct: -1}); err == nil {
		t.Error("negative relative threshold accepted")
	}
	if _, err := Compare(a, a, Thresholds{AbsFloor: -time.Second}); err == nil {
		t.Error("negative absolute floor accepted")
	}
}

func TestFormatComparisonMentionsRegression(t *testing.T) {
	base := readFixture(t, "baseline.json")
	cand := readFixture(t, "candidate_regressed.json")
	c, err := Compare(base, cand, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	out := FormatComparison(c)
	if !strings.Contains(out, "REGRESSED: 1") {
		t.Errorf("comparison table missing regression summary:\n%s", out)
	}
}
