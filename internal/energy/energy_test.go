package energy

import (
	"math"
	"testing"
	"testing/quick"

	"igpucomm/internal/units"
)

func cfg() PowerConfig {
	return PowerConfig{
		StaticWatts:    2,
		CPUActiveWatts: 1,
		GPUActiveWatts: 3,
		DRAMPJPerByte:  100,
		CopyPJPerByte:  50,
	}
}

func TestValidate(t *testing.T) {
	if err := cfg().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := cfg()
	bad.DRAMPJPerByte = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative coefficient accepted")
	}
}

func TestJoulesComposition(t *testing.T) {
	p := cfg()
	a := Activity{
		Runtime:   units.Lat(1e9), // 1 second
		CPUBusy:   units.Lat(5e8), // 0.5s
		GPUBusy:   units.Lat(25e7),
		DRAMBytes: 1e12, // 1 TB -> 100 pJ/B = 100 J
		CopyBytes: 1e12, // 50 J
	}
	want := 2.0 + 0.5 + 0.75 + 100 + 50
	if got := p.Joules(a); math.Abs(got-want) > 1e-9 {
		t.Errorf("Joules = %v, want %v", got, want)
	}
	if got := p.Power(a); math.Abs(got-want) > 1e-9 {
		t.Errorf("Power over 1s = %v, want %v", got, want)
	}
}

func TestPowerZeroRuntime(t *testing.T) {
	if got := cfg().Power(Activity{}); got != 0 {
		t.Errorf("power with no runtime = %v, want 0", got)
	}
}

func TestSavingPerSecond(t *testing.T) {
	p := cfg()
	sc := Activity{Runtime: units.Lat(1e6), DRAMBytes: 4e9, CopyBytes: 2e9} // per frame
	zc := Activity{Runtime: units.Lat(1e6), DRAMBytes: 2e9}
	// Per frame: SC = static*1ms + 0.4 + 0.1; ZC = static*1ms + 0.2.
	// Delta = 0.3 J/frame; at 30 Hz = 9 J/s.
	got := p.SavingPerSecond(sc, zc, 30)
	if math.Abs(got-9.0) > 1e-9 {
		t.Errorf("saving = %v, want 9", got)
	}
}

// Property: energy is monotone in every activity component.
func TestPropertyMonotone(t *testing.T) {
	p := cfg()
	f := func(base uint32, extra uint16) bool {
		a := Activity{
			Runtime:   units.Latency(base),
			CPUBusy:   units.Latency(base / 2),
			GPUBusy:   units.Latency(base / 4),
			DRAMBytes: int64(base),
			CopyBytes: int64(base / 2),
		}
		more := a
		more.DRAMBytes += int64(extra)
		more.Runtime += units.Latency(extra)
		return p.Joules(more) >= p.Joules(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
