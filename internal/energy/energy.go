// Package energy provides the activity-based energy model behind the
// paper's J/s savings numbers: eliminating explicit copies removes DRAM
// round-trips and copy-engine activity, which is where zero-copy's energy
// advantage comes from even when its runtime is only on par.
package energy

import (
	"fmt"

	"igpucomm/internal/units"
)

// PowerConfig is one platform's power/energy coefficients.
type PowerConfig struct {
	StaticWatts    float64 // always-on baseline (rails, SoC idle)
	CPUActiveWatts float64 // extra power while the CPU cluster is busy
	GPUActiveWatts float64 // extra power while the iGPU is busy
	DRAMPJPerByte  float64 // picojoules per byte of DRAM traffic
	CopyPJPerByte  float64 // extra picojoules per byte moved by the copy engine
}

// Validate reports configuration problems.
func (p PowerConfig) Validate() error {
	if p.StaticWatts < 0 || p.CPUActiveWatts < 0 || p.GPUActiveWatts < 0 ||
		p.DRAMPJPerByte < 0 || p.CopyPJPerByte < 0 {
		return fmt.Errorf("energy: power config: negative coefficient %+v", p)
	}
	return nil
}

// Activity summarizes one run's energy-relevant activity.
type Activity struct {
	Runtime   units.Latency // wall time of the whole run
	CPUBusy   units.Latency // time the CPU cluster was executing
	GPUBusy   units.Latency // time the iGPU was executing
	DRAMBytes int64         // total DRAM traffic
	CopyBytes int64         // bytes moved by the copy engine
}

// Joules computes the total energy of the activity under the power model.
func (p PowerConfig) Joules(a Activity) float64 {
	j := p.StaticWatts * a.Runtime.Seconds()
	j += p.CPUActiveWatts * a.CPUBusy.Seconds()
	j += p.GPUActiveWatts * a.GPUBusy.Seconds()
	j += p.DRAMPJPerByte * float64(a.DRAMBytes) * 1e-12
	j += p.CopyPJPerByte * float64(a.CopyBytes) * 1e-12
	return j
}

// Power returns the average power draw of the activity in watts.
func (p PowerConfig) Power(a Activity) float64 {
	s := a.Runtime.Seconds()
	if s <= 0 {
		return 0
	}
	return p.Joules(a) / s
}

// SavingPerSecond reports how many joules per second of operation are saved
// by running activity b instead of activity a at the same iteration rate.
// Both activities must describe the same amount of work (e.g. one frame);
// rate is iterations per second (the paper uses a 30 Hz camera).
func (p PowerConfig) SavingPerSecond(a, b Activity, rate float64) float64 {
	return (p.Joules(a) - p.Joules(b)) * rate
}
