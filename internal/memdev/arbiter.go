package memdev

import "igpucomm/internal/units"

// Demand is one agent's bandwidth appetite during an overlapped interval.
type Demand struct {
	Name string
	Want units.BytesPerSecond // bandwidth the stream would use if alone
}

// Share runs a max-min fair (water-filling) allocation of the peak bandwidth
// across concurrent demands. Streams that want less than their fair share
// keep what they want; the slack is redistributed among the rest. This is the
// arbiter the timing layer uses to model CPU/GPU DRAM contention during
// overlapped zero-copy phases.
//
// The returned slice is aligned with demands. The sum of grants never exceeds
// peak, and no grant exceeds its demand.
func Share(peak units.BytesPerSecond, demands []Demand) []units.BytesPerSecond {
	grants := make([]units.BytesPerSecond, len(demands))
	if peak <= 0 || len(demands) == 0 {
		return grants
	}
	remaining := peak
	satisfied := make([]bool, len(demands))
	unsat := 0
	for i, d := range demands {
		if d.Want <= 0 {
			satisfied[i] = true
			continue
		}
		unsat++
	}
	for unsat > 0 {
		fair := remaining / units.BytesPerSecond(unsat)
		progressed := false
		for i, d := range demands {
			if satisfied[i] {
				continue
			}
			if d.Want <= fair {
				grants[i] = d.Want
				remaining -= d.Want
				satisfied[i] = true
				unsat--
				progressed = true
			}
		}
		if !progressed {
			// Everyone left wants at least the fair share: split evenly.
			for i := range demands {
				if !satisfied[i] {
					grants[i] = fair
				}
			}
			return grants
		}
	}
	return grants
}

// Slowdown returns the factor by which a stream's memory-bound time grows
// when it is granted `got` instead of its solo demand `want`. By construction
// it is >= 1 (with got <= want).
func Slowdown(want, got units.BytesPerSecond) float64 {
	if want <= 0 || got <= 0 {
		return 1
	}
	if got >= want {
		return 1
	}
	return float64(want) / float64(got)
}
