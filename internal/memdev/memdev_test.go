package memdev

import (
	"math"
	"testing"
	"testing/quick"

	"igpucomm/internal/cache"
	"igpucomm/internal/units"
)

func newDRAM() *DRAM {
	return New(Config{Name: "dram", Latency: 100, Bandwidth: 25 * units.GBps})
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Name: "ok", Latency: 10, Bandwidth: units.GBps}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := (Config{Name: "neg", Latency: -1, Bandwidth: units.GBps}).Validate(); err == nil {
		t.Error("negative latency accepted")
	}
	if err := (Config{Name: "nobw", Latency: 1, Bandwidth: 0}).Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New did not panic on invalid config")
		}
	}()
	New(Config{Name: "bad", Bandwidth: 0})
}

func TestDRAMLatencyAndCounters(t *testing.T) {
	d := newDRAM()
	r := d.Do(cache.Access{Addr: 0, Size: 64, Kind: cache.Read})
	if r.Latency != 100 || r.ServedBy != "dram" {
		t.Errorf("read = %+v, want latency 100 served by dram", r)
	}
	if r := d.Do(cache.Access{Addr: 64, Size: 64, Kind: cache.Writeback}); r.Latency != 0 {
		t.Errorf("writeback latency = %v, want 0 (posted)", r.Latency)
	}
	st := d.Stats()
	if st.Reads != 1 || st.Writebacks != 1 || st.BytesRead != 64 || st.BytesWritten != 64 {
		t.Errorf("stats = %+v", st)
	}
	if st.Bytes() != 128 {
		t.Errorf("total bytes = %d, want 128", st.Bytes())
	}
}

func TestDemandWriteCountsAsLineFetch(t *testing.T) {
	d := newDRAM()
	d.Do(cache.Access{Addr: 0, Size: 64, Kind: cache.Write})
	st := d.Stats()
	if st.Writes != 1 || st.BytesRead != 64 {
		t.Errorf("write-allocate accounting wrong: %+v", st)
	}
}

func TestPortLatencyOverrideAndAttribution(t *testing.T) {
	d := newDRAM()
	p := d.NewPort("gpu", 250)
	r := p.Do(cache.Access{Addr: 0, Size: 64, Kind: cache.Read})
	if r.Latency != 250 {
		t.Errorf("port latency = %v, want 250", r.Latency)
	}
	if r.ServedBy != "gpu" {
		t.Errorf("served by %q, want gpu", r.ServedBy)
	}
	inherit := d.NewPort("cpu", -1)
	if r := inherit.Do(cache.Access{Addr: 0, Size: 64, Kind: cache.Read}); r.Latency != 100 {
		t.Errorf("inherit latency = %v, want device 100", r.Latency)
	}
	if d.Stats().Reads != 2 {
		t.Errorf("device reads = %d, want 2 (both ports)", d.Stats().Reads)
	}
	if p.Stats().Reads != 1 {
		t.Errorf("port reads = %d, want 1", p.Stats().Reads)
	}
}

func TestPortWritebackKeepsZeroLatency(t *testing.T) {
	d := newDRAM()
	p := d.NewPort("cpu", 123)
	if r := p.Do(cache.Access{Addr: 0, Size: 64, Kind: cache.Writeback}); r.Latency != 0 {
		t.Errorf("writeback via port latency = %v, want 0", r.Latency)
	}
}

func TestUncachedPortWriteGoesToMemory(t *testing.T) {
	d := newDRAM()
	u := d.NewUncachedPortRW("pinned", 500, 50)
	r := u.Do(cache.Access{Addr: 0, Size: 4, Kind: cache.Write})
	if r.Latency != 50 || r.ServedBy != "pinned" {
		t.Errorf("uncached write = %+v, want write-combined latency 50", r)
	}
	st := u.Stats()
	if st.Writes != 1 || st.BytesWritten != 4 || st.BytesRead != 0 {
		t.Errorf("uncached write accounting wrong: %+v", st)
	}
	if d.Stats().BytesWritten != 4 {
		t.Errorf("device bytes written = %d, want 4", d.Stats().BytesWritten)
	}
}

func TestUncachedPortReads(t *testing.T) {
	d := newDRAM()
	u := d.NewUncachedPort("pinned", 500)
	u.Do(cache.Access{Addr: 0, Size: 4, Kind: cache.Read})
	if st := u.Stats(); st.Reads != 1 || st.BytesRead != 4 {
		t.Errorf("uncached read accounting wrong: %+v", st)
	}
}

func TestDegenerateAccesses(t *testing.T) {
	d := newDRAM()
	p := d.NewPort("p", -1)
	u := d.NewUncachedPort("u", 10)
	for _, r := range []cache.Result{
		d.Do(cache.Access{Size: 0}),
		p.Do(cache.Access{Size: -1}),
		u.Do(cache.Access{Size: 0}),
	} {
		if r.Latency != 0 || r.ServedBy != "" {
			t.Errorf("degenerate access produced %+v", r)
		}
	}
	if d.Stats() != (Stats{}) {
		t.Error("degenerate accesses counted")
	}
}

func TestResetStats(t *testing.T) {
	d := newDRAM()
	p := d.NewPort("p", -1)
	p.Do(cache.Access{Addr: 0, Size: 64, Kind: cache.Read})
	p.ResetStats()
	d.ResetStats()
	if p.Stats() != (Stats{}) || d.Stats() != (Stats{}) {
		t.Error("stats survived reset")
	}
}

func TestShareUnderSubscribed(t *testing.T) {
	grants := Share(10*units.GBps, []Demand{
		{Name: "cpu", Want: 2 * units.GBps},
		{Name: "gpu", Want: 3 * units.GBps},
	})
	if grants[0] != 2*units.GBps || grants[1] != 3*units.GBps {
		t.Errorf("grants = %v, want demands honoured", grants)
	}
}

func TestShareOverSubscribedEven(t *testing.T) {
	grants := Share(10*units.GBps, []Demand{
		{Name: "cpu", Want: 20 * units.GBps},
		{Name: "gpu", Want: 20 * units.GBps},
	})
	if grants[0] != 5*units.GBps || grants[1] != 5*units.GBps {
		t.Errorf("grants = %v, want even 5/5", grants)
	}
}

func TestShareWaterFilling(t *testing.T) {
	// Small stream keeps its demand; big streams split the rest.
	grants := Share(10*units.GBps, []Demand{
		{Name: "small", Want: 1 * units.GBps},
		{Name: "big1", Want: 20 * units.GBps},
		{Name: "big2", Want: 20 * units.GBps},
	})
	if grants[0] != 1*units.GBps {
		t.Errorf("small grant = %v, want its 1GB/s demand", grants[0])
	}
	if math.Abs(float64(grants[1]-4.5*units.GBps)) > 1 || math.Abs(float64(grants[2]-4.5*units.GBps)) > 1 {
		t.Errorf("big grants = %v/%v, want 4.5 each", grants[1], grants[2])
	}
}

func TestShareEdgeCases(t *testing.T) {
	if g := Share(0, []Demand{{Want: units.GBps}}); g[0] != 0 {
		t.Error("zero peak should grant nothing")
	}
	if g := Share(units.GBps, nil); len(g) != 0 {
		t.Error("nil demands should return empty grants")
	}
	g := Share(units.GBps, []Demand{{Want: 0}, {Want: -5}})
	if g[0] != 0 || g[1] != 0 {
		t.Error("non-positive demands should grant zero")
	}
}

// Property: grants never exceed demands, never exceed peak in total, and a
// lone stream gets min(demand, peak).
func TestPropertyShareSound(t *testing.T) {
	f := func(wants []uint16, peakU uint16) bool {
		peak := units.BytesPerSecond(peakU) * units.MBps
		demands := make([]Demand, len(wants))
		for i, w := range wants {
			demands[i] = Demand{Want: units.BytesPerSecond(w) * units.MBps}
		}
		grants := Share(peak, demands)
		var total units.BytesPerSecond
		for i, g := range grants {
			if g > demands[i].Want+1e-6 {
				return false
			}
			total += g
		}
		return total <= peak+1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSlowdown(t *testing.T) {
	if s := Slowdown(10*units.GBps, 5*units.GBps); s != 2 {
		t.Errorf("slowdown = %v, want 2", s)
	}
	if s := Slowdown(5*units.GBps, 10*units.GBps); s != 1 {
		t.Errorf("grant above demand slowdown = %v, want 1", s)
	}
	if s := Slowdown(0, 0); s != 1 {
		t.Errorf("degenerate slowdown = %v, want 1", s)
	}
}

func TestAccessorsAndStatsAdd(t *testing.T) {
	d := newDRAM()
	if d.Name() != "dram" || d.Config().Latency != 100 {
		t.Error("device accessors wrong")
	}
	p := d.NewPort("cpu", -1)
	if p.Name() != "cpu" {
		t.Error("port name wrong")
	}
	u := d.NewUncachedPort("pin", 10)
	if u.Name() != "pin" {
		t.Error("uncached port name wrong")
	}
	u.Do(cache.Access{Addr: 0, Size: 4, Kind: cache.Read})
	u.ResetStats()
	if u.Stats() != (Stats{}) {
		t.Error("uncached reset failed")
	}
	a := Stats{Reads: 1, BytesRead: 64}
	a.Add(Stats{Writes: 2, Writebacks: 3, BytesWritten: 128})
	if a.Reads != 1 || a.Writes != 2 || a.Writebacks != 3 || a.Bytes() != 192 {
		t.Errorf("Add wrong: %+v", a)
	}
}
