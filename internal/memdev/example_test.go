package memdev_test

import (
	"fmt"

	"igpucomm/internal/memdev"
	"igpucomm/internal/units"
)

// The arbiter splits DRAM bandwidth max-min fairly between concurrent
// streams — how the simulator prices overlapped zero-copy phases.
func ExampleShare() {
	grants := memdev.Share(10*units.GBps, []memdev.Demand{
		{Name: "cpu", Want: 2 * units.GBps},  // modest stream keeps its demand
		{Name: "gpu", Want: 20 * units.GBps}, // greedy stream takes the rest
	})
	fmt.Printf("cpu %.0f GB/s, gpu %.0f GB/s\n", grants[0].GB(), grants[1].GB())
	// Output: cpu 2 GB/s, gpu 8 GB/s
}

// Slowdown converts a grant into the stretch factor of a stream's
// memory-bound time.
func ExampleSlowdown() {
	fmt.Printf("%.1fx\n", memdev.Slowdown(20*units.GBps, 8*units.GBps))
	// Output: 2.5x
}
