// Package memdev models the physically shared system memory of an embedded
// CPU-iGPU SoC, plus the distinct paths through which agents reach it:
//
//   - cacheable ports (behind the CPU or GPU cache hierarchies),
//   - the uncached pinned port used by zero-copy on devices that disable
//     caches for coherence (Jetson Nano, TX2), and
//   - nothing else: the I/O-coherence path lives in internal/coherence since
//     it routes through the *CPU's* LLC rather than straight to DRAM.
//
// The device itself is purely an accounting and latency model. Sustained
// bandwidth effects (a streaming kernel being DRAM-bound, or CPU and GPU
// contending during overlapped zero-copy phases) are applied analytically by
// the timing layer using the byte counters collected here together with the
// Share arbiter.
package memdev

import (
	"fmt"

	"igpucomm/internal/cache"
	"igpucomm/internal/units"
)

// Config describes the DRAM device.
type Config struct {
	Name      string
	Latency   units.Latency        // demand-access latency seen by a cacheable port
	Bandwidth units.BytesPerSecond // peak sustained bandwidth
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Latency < 0 {
		return fmt.Errorf("memdev: dram %s: negative latency", c.Name)
	}
	if c.Bandwidth <= 0 {
		return fmt.Errorf("memdev: dram %s: bandwidth must be positive", c.Name)
	}
	return nil
}

// Stats counts traffic at the DRAM device or at one of its ports.
type Stats struct {
	Reads        int64
	Writes       int64
	Writebacks   int64
	BytesRead    int64
	BytesWritten int64
}

// Bytes is the total traffic in both directions.
func (s Stats) Bytes() int64 { return s.BytesRead + s.BytesWritten }

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Reads += other.Reads
	s.Writes += other.Writes
	s.Writebacks += other.Writebacks
	s.BytesRead += other.BytesRead
	s.BytesWritten += other.BytesWritten
}

func (s *Stats) count(a cache.Access) {
	switch a.Kind {
	case cache.Read:
		s.Reads++
		s.BytesRead += a.Size
	case cache.Write:
		// Write-allocate hierarchies fetch the line on a write miss, so a
		// demand write reaching DRAM still *reads* the line; the dirty data
		// returns later as a writeback. Uncached ports override this.
		s.Writes++
		s.BytesRead += a.Size
	case cache.Writeback:
		s.Writebacks++
		s.BytesWritten += a.Size
	}
}

// DRAM is the shared memory device. It terminates every cache hierarchy in
// the SoC. Not safe for concurrent use.
type DRAM struct {
	cfg   Config
	stats Stats
}

// New builds the device; it panics on invalid configuration (static wiring).
func New(cfg Config) *DRAM {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &DRAM{cfg: cfg}
}

// Name returns the device name.
func (d *DRAM) Name() string { return d.cfg.Name }

// Config returns the device configuration.
func (d *DRAM) Config() Config { return d.cfg }

// Do services an access at the device's demand latency. Writebacks are
// latency-free (posted) but counted.
func (d *DRAM) Do(a cache.Access) cache.Result {
	if a.Size <= 0 {
		return cache.Result{}
	}
	d.stats.count(a)
	if a.Kind == cache.Writeback {
		return cache.Result{ServedBy: d.cfg.Name}
	}
	return cache.Result{Latency: d.cfg.Latency, ServedBy: d.cfg.Name}
}

// Stats returns a snapshot of device-level counters.
func (d *DRAM) Stats() Stats { return d.stats }

// ResetStats zeroes the device counters.
func (d *DRAM) ResetStats() { d.stats = Stats{} }

// Port is a named window onto the DRAM with its own latency and counters.
// Each agent (CPU hierarchy, GPU hierarchy, copy engine, pinned path) talks
// to memory through its own port so the profiler can attribute traffic.
type Port struct {
	name    string
	dram    *DRAM
	latency units.Latency // overrides the device latency when >= 0
	stats   Stats
}

// NewPort creates a port. latency < 0 means "use the device latency".
func (d *DRAM) NewPort(name string, latency units.Latency) *Port {
	return &Port{name: name, dram: d, latency: latency}
}

// Name returns the port name.
func (p *Port) Name() string { return p.name }

// Do forwards to the device, substituting the port latency.
func (p *Port) Do(a cache.Access) cache.Result {
	if a.Size <= 0 {
		return cache.Result{}
	}
	p.stats.count(a)
	r := p.dram.Do(a)
	if a.Kind != cache.Writeback && p.latency >= 0 {
		r.Latency = p.latency
	}
	r.ServedBy = p.name
	return r
}

// Stats returns the port's counters.
func (p *Port) Stats() Stats { return p.stats }

// ResetStats zeroes the port's counters (device counters are untouched).
func (p *Port) ResetStats() { p.stats = Stats{} }

// UncachedPort models the pinned, cache-bypassing path zero-copy uses on
// devices without hardware I/O coherence. Reads pay the full uncached DRAM
// latency; writes are cheaper (hardware write-combining buffers post them),
// and, unlike the cacheable path, a demand write moves data *to* memory
// (there is no allocate-on-write).
type UncachedPort struct {
	name     string
	dram     *DRAM
	latency  units.Latency // demand read latency
	writeLat units.Latency // posted write latency
	stats    Stats
}

// NewUncachedPort creates the pinned path with its uncached read latency;
// writes cost a tenth of it (write-combining).
func (d *DRAM) NewUncachedPort(name string, latency units.Latency) *UncachedPort {
	return &UncachedPort{name: name, dram: d, latency: latency, writeLat: latency / 10}
}

// NewUncachedPortRW creates the pinned path with distinct read and write
// latencies.
func (d *DRAM) NewUncachedPortRW(name string, readLat, writeLat units.Latency) *UncachedPort {
	return &UncachedPort{name: name, dram: d, latency: readLat, writeLat: writeLat}
}

// Name returns the port name.
func (p *UncachedPort) Name() string { return p.name }

// Do services an uncached access.
func (p *UncachedPort) Do(a cache.Access) cache.Result {
	if a.Size <= 0 {
		return cache.Result{}
	}
	switch a.Kind {
	case cache.Read:
		p.stats.Reads++
		p.stats.BytesRead += a.Size
		p.dram.stats.Reads++
		p.dram.stats.BytesRead += a.Size
		return cache.Result{Latency: p.latency, ServedBy: p.name}
	default:
		// Uncached writes (demand or writeback) go straight to memory
		// through the write-combining buffer.
		p.stats.Writes++
		p.stats.BytesWritten += a.Size
		p.dram.stats.Writes++
		p.dram.stats.BytesWritten += a.Size
		return cache.Result{Latency: p.writeLat, ServedBy: p.name}
	}
}

// Stats returns the port's counters.
func (p *UncachedPort) Stats() Stats { return p.stats }

// ResetStats zeroes the port's counters.
func (p *UncachedPort) ResetStats() { p.stats = Stats{} }
