package main

import (
	"fmt"
	"strings"

	"igpucomm/internal/apps/catalog"
	"igpucomm/internal/comm"
	"igpucomm/internal/devices"
	"igpucomm/internal/heatmap"
	"igpucomm/internal/soc"
)

// heatText is the heat artifact's fmt.Stringer.
type heatText string

func (h heatText) String() string { return string(h) }

// runHeat renders the per-buffer heat map of one representative combination
// (the TX2 running shwfs) under every communication model — the
// observability companion to the paper tables: which buffers each model
// keeps hot, as ASCII heat bars.
func runHeat(quick bool) (fmt.Stringer, error) {
	scale := catalog.Full
	if quick {
		scale = catalog.Quick
	}
	cfg, err := devices.ByName(devices.TX2Name)
	if err != nil {
		return nil, err
	}
	w, err := catalog.ByName("shwfs", scale)
	if err != nil {
		return nil, err
	}
	s := soc.New(cfg)
	s.EnableHeat()
	var b strings.Builder
	for _, m := range comm.AllModels() {
		rep, err := m.Run(s, w)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "%s / %s / %s\n", cfg.Name, w.Name, m.Name())
		b.WriteString(heatmap.Render(rep.BufferHeat))
		b.WriteByte('\n')
	}
	return heatText(strings.TrimRight(b.String(), "\n")), nil
}
