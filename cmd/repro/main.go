// Command repro regenerates every table and figure of the paper's evaluation
// (§IV) on the simulated platforms and prints them with the paper's
// reference values alongside.
//
// Usage:
//
//	repro                 # everything
//	repro -exp table1     # one artifact: table1..table5, fig3, fig5, fig6, fig7
//	repro -quick          # reduced micro-benchmark scale (fast smoke run)
package main

import (
	"context"
	"flag"
	"fmt"
	"igpucomm/internal/buildinfo"
	"os"
	"strings"

	"igpucomm/internal/experiments"
	"igpucomm/internal/microbench"
	"igpucomm/internal/report"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, table1..table5, fig3, fig5, fig6, fig7, async, energy, realtime, heatmap")
	quick := flag.Bool("quick", false, "use the reduced micro-benchmark scale")
	format := flag.String("format", "text", "output format for tables: text or md")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Get())
		return
	}

	params := microbench.DefaultParams()
	if *quick {
		params = microbench.TestParams()
	}
	ctx := context.Background()
	ec := experiments.NewContext(params)

	type artifact struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	artifacts := []artifact{
		{"table1", func() (fmt.Stringer, error) { t, _, err := experiments.Table1(ctx, ec); return t, err }},
		{"fig5", func() (fmt.Stringer, error) { t, _, err := experiments.Fig5(ctx, ec); return t, err }},
		{"fig3", func() (fmt.Stringer, error) { s, _, err := experiments.Fig3(ctx, ec); return s, err }},
		{"fig6", func() (fmt.Stringer, error) { s, _, err := experiments.Fig6(ctx, ec); return s, err }},
		{"fig7", func() (fmt.Stringer, error) { t, _, err := experiments.Fig7(ctx, ec); return t, err }},
		{"table2", func() (fmt.Stringer, error) { t, _, err := experiments.Table2(ctx, ec); return t, err }},
		{"table3", func() (fmt.Stringer, error) { t, _, err := experiments.Table3(ctx, ec); return t, err }},
		{"table4", func() (fmt.Stringer, error) { t, _, err := experiments.Table4(ctx, ec); return t, err }},
		{"table5", func() (fmt.Stringer, error) { t, _, err := experiments.Table5(ctx, ec); return t, err }},
		{"async", func() (fmt.Stringer, error) { t, _, err := experiments.TableAsync(ctx, ec); return t, err }},
		{"energy", func() (fmt.Stringer, error) { t, _, err := experiments.TableEnergy(ctx, ec); return t, err }},
		{"realtime", func() (fmt.Stringer, error) { t, _, err := experiments.TableRealtime(ctx, ec); return t, err }},
		{"heatmap", func() (fmt.Stringer, error) { return runHeat(*quick) }},
	}

	ran := 0
	for _, a := range artifacts {
		if *exp != "all" && !strings.EqualFold(*exp, a.name) {
			continue
		}
		out, err := a.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s: %v\n", a.name, err)
			os.Exit(1)
		}
		if tab, ok := out.(report.Table); ok && *format == "md" {
			fmt.Println(tab.Markdown())
		} else {
			fmt.Println(out.String())
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "repro: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
