// Command microbench characterizes a platform with the paper's three
// micro-benchmarks (§III-B) and prints the resulting device profile: peak
// GPU cache throughput per communication model, the cache-usage thresholds,
// and the maximum speedups a model switch can buy.
//
// Usage:
//
//	microbench -device jetson-tx2
//	microbench -device jetson-agx-xavier -quick
package main

import (
	"context"
	"flag"
	"fmt"
	"igpucomm/internal/buildinfo"
	"os"
	"strings"

	"igpucomm/internal/devices"
	"igpucomm/internal/framework"
	"igpucomm/internal/microbench"
)

func main() {
	device := flag.String("device", devices.XavierName, "platform: "+strings.Join(names(), ", "))
	quick := flag.Bool("quick", false, "reduced scale")
	save := flag.String("save", "", "write the characterization to this JSON file")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Get())
		return
	}

	s, err := devices.NewSoC(*device)
	if err != nil {
		fmt.Fprintln(os.Stderr, "microbench:", err)
		os.Exit(1)
	}
	params := microbench.DefaultParams()
	if *quick {
		params = microbench.TestParams()
	}
	char, err := framework.Characterize(context.Background(), s, params)
	if err != nil {
		fmt.Fprintln(os.Stderr, "microbench:", err)
		os.Exit(1)
	}

	fmt.Printf("device characterization: %s (I/O coherent: %v)\n\n", char.Platform, char.IOCoherent)

	fmt.Println("first micro-benchmark — GPU LL-L1 cache, per communication model:")
	for _, row := range char.MB1.Rows {
		fmt.Printf("  %-3s  cpu %-12v  kernel %-12v  throughput %8.2f GB/s\n",
			row.Model, row.CPUTime.Duration(), row.KernelTime.Duration(), row.Throughput.GB())
	}
	fmt.Printf("  ZC/SC max speedup (cache-dependent apps leaving ZC): %.1fx\n\n", char.ZCSCMaxSpeedup)

	fmt.Println("second micro-benchmark — cache-usage thresholds:")
	fmt.Printf("  GPU: ZC safe below %.1f%%, conditional to %.1f%%, discouraged above\n",
		char.Thresholds.GPUCacheLow*100, char.Thresholds.GPUCacheHigh*100)
	fmt.Printf("  CPU: threshold %.2f%%%s\n\n", char.Thresholds.CPUCache*100,
		coherentNote(char.IOCoherent))

	fmt.Println("third micro-benchmark — balanced overlapped workload:")
	fmt.Printf("  SC %-12v UM %-12v ZC %-12v\n",
		char.MB3.SCTotal.Duration(), char.MB3.UMTotal.Duration(), char.MB3.ZCTotal.Duration())
	fmt.Printf("  SC/ZC max speedup (apps adopting ZC): %.2fx\n", char.SCZCMaxSpeedup)

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintln(os.Stderr, "microbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := framework.SaveCharacterization(f, char); err != nil {
			fmt.Fprintln(os.Stderr, "microbench:", err)
			os.Exit(1)
		}
		fmt.Printf("\ncharacterization saved to %s\n", *save)
	}
}

func names() []string {
	var out []string
	for _, c := range devices.All() {
		out = append(out, c.Name)
	}
	return out
}

func coherentNote(coherent bool) string {
	if coherent {
		return " (CPU caches stay enabled under ZC: no CPU-side limit)"
	}
	return " (pinned buffers are uncached for the CPU)"
}
