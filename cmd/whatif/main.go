// Command whatif explores the device design space: sweep one platform
// parameter and watch where the best communication model flips for an
// application — the architect's dual of the paper's programmer-facing
// question.
//
// Usage:
//
//	whatif -base jetson-tx2 -axis io -min 1 -max 64 -steps 7 -app shwfs
//	whatif -base jetson-agx-xavier -axis copy -min 0.5 -max 32 -steps 6 -app lanedet
package main

import (
	"flag"
	"fmt"
	"igpucomm/internal/buildinfo"
	"os"

	"igpucomm/internal/apps/lanedet"
	"igpucomm/internal/apps/orbslam"
	"igpucomm/internal/apps/shwfs"
	"igpucomm/internal/comm"
	"igpucomm/internal/devices"
	"igpucomm/internal/dse"
)

func main() {
	base := flag.String("base", devices.TX2Name, "base platform")
	axisName := flag.String("axis", "io", "axis: io, copy, pinned, dram")
	min := flag.Float64("min", 1, "axis minimum (GB/s)")
	max := flag.Float64("max", 64, "axis maximum (GB/s)")
	steps := flag.Int("steps", 7, "sweep points (geometric)")
	app := flag.String("app", "shwfs", "application: shwfs, orbslam, lanedet")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Get())
		return
	}

	var (
		w   comm.Workload
		err error
	)
	switch *app {
	case "shwfs":
		w, err = shwfs.Workload(shwfs.DefaultWorkloadParams())
	case "orbslam":
		w, err = orbslam.Workload(orbslam.DefaultWorkloadParams())
	case "lanedet":
		w, err = lanedet.Workload(lanedet.DefaultWorkloadParams())
	default:
		err = fmt.Errorf("unknown app %q", *app)
	}
	fatalIf(err)

	cfg, err := devices.ByName(*base)
	fatalIf(err)
	axis, err := dse.AxisByName(*axisName)
	fatalIf(err)

	values := dse.Geomspace(*min, *max, *steps)
	points, err := dse.Sweep(cfg, axis, values, w, nil)
	fatalIf(err)

	fmt.Printf("what-if: %s on %s, sweeping %s\n\n", *app, *base, axis.Name)
	fmt.Printf("%-12s  %-12s  %-12s  %-12s  %s\n", axis.Name+" ("+axis.Unit+")", "sc", "um", "zc", "best")
	for _, p := range points {
		fmt.Printf("%-12.3g  %-12v  %-12v  %-12v  %s\n",
			p.Value,
			p.Totals["sc"].Duration(), p.Totals["um"].Duration(), p.Totals["zc"].Duration(),
			p.Best)
	}
	if v, ok := dse.Crossover(points, "zc"); ok {
		fmt.Printf("\nzero-copy becomes the best model from %.3g %s\n", v, axis.Unit)
	} else {
		fmt.Println("\nzero-copy never wins on this axis range")
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "whatif:", err)
		os.Exit(1)
	}
}
