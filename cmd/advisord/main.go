// Command advisord serves the paper's tuning flow as an HTTP service: batch
// advisory requests, cached device characterizations, health, status and
// Prometheus metrics. Characterizations are memoized in the execution
// engine's LRU cache (with singleflight deduplication), so concurrent
// requests for the same device share one simulation and warm traffic skips
// characterization entirely.
//
// Endpoints:
//
//	POST /v1/advise        {"requests":[{"device":"jetson-tx2","app":"shwfs","current":"sc"}]}
//	GET  /v1/characterize?device=jetson-agx-xavier
//	GET  /healthz
//	GET  /statusz
//	GET  /metrics          Prometheus text exposition
//
// The /v1 endpoints run behind a resilience layer: a per-request deadline
// (-request-timeout), a bounded admission queue that sheds overload with
// 429 + Retry-After (-max-concurrent/-max-queue), and a circuit breaker
// around device characterization (-breaker-threshold/-breaker-cooldown).
// When the engine cannot answer, /v1/advise falls back to a threshold-only
// heuristic and marks the response "degraded": true.
//
// Every response carries an X-Trace-Id header (generated, or echoed from the
// request) that also appears in the structured request log. With -debug-addr
// set, net/http/pprof is served on a separate listener. SIGINT/SIGTERM drain
// in-flight requests for up to -drain-timeout before the process exits.
// Invalid flag combinations are rejected at startup with a usage error
// (exit 2) before any listener binds.
//
// For chaos testing, -faults (or the FAULTS environment variable) activates
// the deterministic fault-injection layer; see internal/faults for the spec
// grammar.
//
// With -shard-id and -peers, the replica joins a sharded fleet: advisory
// questions route to the shard owning their characterization key on a
// consistent-hash ring, /v1/fleet/topology and /v1/cache/export join the main
// surface, and at boot the shard pulls its owned cache entries from its peers
// (warm handoff, best-effort). -admin-addr serves the operator API advisorctl
// speaks — status, ring shares, drain, rebalance — on its own listener. See
// docs/FLEET.md for the runbook.
//
// Usage:
//
//	advisord -addr :8025
//	advisord -addr :8025 -quick -workers 8 -ttl 1h -cache-dir /var/cache/advisord
//	advisord -addr :8025 -debug-addr 127.0.0.1:8026 -drain-timeout 30s
//	advisord -addr :8025 -faults "engine.characterize:error:p=0.2" -faults-seed 7
//	advisord -addr :8025 -admin-addr :8125 -shard-id a \
//	    -peers "a=http://h1:8025,b=http://h2:8025,c=http://h3:8025"
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"igpucomm/internal/advisord"
	"igpucomm/internal/apps/catalog"
	"igpucomm/internal/buildinfo"
	"igpucomm/internal/engine"
	"igpucomm/internal/faults"
	"igpucomm/internal/fleet"
	"igpucomm/internal/microbench"
)

func main() {
	cfg, err := parseConfig(os.Args[1:])
	if err != nil {
		// flag.Parse already printed its own message for parse failures;
		// validation failures still need theirs.
		if errors.Is(err, flag.ErrHelp) || errors.Is(err, errFlagParse) {
			os.Exit(2)
		}
		usageError(err)
	}

	if cfg.version {
		fmt.Println(buildinfo.Get())
		return
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	slog.SetDefault(logger)

	if plan, err := cfg.faultPlan(); err != nil {
		usageError(err)
	} else if plan != nil {
		if err := faults.Activate(plan); err != nil {
			usageError(err)
		}
		logger.Warn("fault injection active", "spec", cfg.faultSpec, "seed", cfg.faultSeed)
	}

	params := microbench.DefaultParams()
	scale := catalog.Full
	if cfg.quick {
		params = microbench.TestParams()
		scale = catalog.Quick
	}

	eng := engine.New(engine.Options{
		Workers:      cfg.workers,
		CacheEntries: cfg.cacheEntries,
		TTL:          cfg.ttl,
	})
	if cfg.cacheDir != "" {
		if _, err := os.Stat(cfg.cacheDir); err == nil {
			n, err := eng.LoadCache(cfg.cacheDir)
			if err != nil {
				logger.Error("warm start failed", "dir", cfg.cacheDir, "err", err)
				os.Exit(1)
			}
			logger.Info("warm start", "characterizations", n,
				"quarantined", eng.Stats().CacheCorruptEntries, "dir", cfg.cacheDir)
		}
	}

	fleetState, err := cfg.fleetState()
	if err != nil {
		usageError(err)
	}
	if fleetState != nil {
		logger.Info("fleet mode", "shard", fleetState.Self(),
			"members", len(fleetState.Ring().Shards()), "vnodes", fleetState.Ring().VNodes())
		warmHandoff(fleetState, eng, logger)
	}

	srv := advisord.New(eng, advisord.Options{
		Params:           params,
		Scale:            scale,
		CacheDir:         cfg.cacheDir,
		Logger:           logger,
		RequestTimeout:   cfg.requestTimeout,
		MaxConcurrent:    cfg.maxConcurrent,
		MaxQueue:         cfg.maxQueue,
		BreakerThreshold: cfg.breakerThreshold,
		BreakerCooldown:  cfg.breakerCooldown,
		Fleet:            fleetState,
	})
	httpSrv := &http.Server{
		Addr:              cfg.addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	var adminSrv *http.Server
	if cfg.adminAddr != "" {
		adminSrv = &http.Server{
			Addr:              cfg.adminAddr,
			Handler:           srv.AdminHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			logger.Info("fleet admin API listening", "addr", cfg.adminAddr)
			if err := adminSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("admin server", "err", err)
			}
		}()
	}

	var debugSrv *http.Server
	if cfg.debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              cfg.debugAddr,
			Handler:           debugMux(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			logger.Info("pprof listening", "addr", cfg.debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug server", "err", err)
			}
		}()
	}

	// Serve until SIGINT/SIGTERM, then drain: Shutdown stops accepting new
	// connections and waits for in-flight advise requests to complete, up
	// to the drain timeout.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", cfg.addr,
			"workers", eng.Workers(), "quick", cfg.quick, "build", buildinfo.Get().String())
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		logger.Error("serve", "err", err)
		os.Exit(1)
	case <-ctx.Done():
		stop()
		logger.Info("shutting down, draining in-flight requests", "timeout", cfg.drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Error("drain incomplete", "err", err)
			os.Exit(1)
		}
		if debugSrv != nil {
			_ = debugSrv.Shutdown(shutdownCtx)
		}
		if adminSrv != nil {
			_ = adminSrv.Shutdown(shutdownCtx)
		}
		logger.Info("shutdown complete")
	}
}

// warmHandoff pulls this shard's owned cache entries from its peers at boot —
// the joining half of the fleet's warm-handoff protocol. Best-effort: peers
// that are down or not yet serving just mean a colder start.
func warmHandoff(st *fleet.State, eng *engine.Engine, logger *slog.Logger) {
	if len(st.Peers()) == 0 {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := fleet.Pull(ctx, st, nil, eng.CachePut)
	if err != nil {
		logger.Warn("warm handoff failed", "err", err)
		return
	}
	logger.Info("warm handoff", "pulled", rep.Pulled, "peers", rep.Peers,
		"peer_errors", len(rep.PeerErrors))
	for _, pe := range rep.PeerErrors {
		logger.Warn("warm handoff peer error", "err", pe)
	}
}

// debugMux builds the pprof handler set without relying on the global
// http.DefaultServeMux (which the main listener intentionally never serves).
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
