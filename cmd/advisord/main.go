// Command advisord serves the paper's tuning flow as an HTTP service: batch
// advisory requests, cached device characterizations, health and status.
// Characterizations are memoized in the execution engine's LRU cache (with
// singleflight deduplication), so concurrent requests for the same device
// share one simulation and warm traffic skips characterization entirely.
//
// Endpoints:
//
//	POST /v1/advise        {"requests":[{"device":"jetson-tx2","app":"shwfs","current":"sc"}]}
//	GET  /v1/characterize?device=jetson-agx-xavier
//	GET  /healthz
//	GET  /statusz
//
// Usage:
//
//	advisord -addr :8025
//	advisord -addr :8025 -quick -workers 8 -ttl 1h -cache-dir /var/cache/advisord
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"igpucomm/internal/apps/catalog"
	"igpucomm/internal/engine"
	"igpucomm/internal/microbench"
)

func main() {
	addr := flag.String("addr", ":8025", "listen address")
	workers := flag.Int("workers", 0, "simulation parallelism (0 = GOMAXPROCS)")
	cacheEntries := flag.Int("cache-entries", 64, "characterization cache capacity")
	ttl := flag.Duration("ttl", 0, "characterization TTL (0 = never expires)")
	quick := flag.Bool("quick", false, "reduced micro-benchmark and workload scale")
	cacheDir := flag.String("cache-dir", "", "warm-start directory: load cached characterizations at boot, persist new ones")
	flag.Parse()

	params := microbench.DefaultParams()
	scale := catalog.Full
	if *quick {
		params = microbench.TestParams()
		scale = catalog.Quick
	}

	eng := engine.New(engine.Options{
		Workers:      *workers,
		CacheEntries: *cacheEntries,
		TTL:          *ttl,
	})
	if *cacheDir != "" {
		if _, err := os.Stat(*cacheDir); err == nil {
			n, err := eng.LoadCache(*cacheDir)
			if err != nil {
				log.Fatalf("advisord: warm start from %s: %v", *cacheDir, err)
			}
			log.Printf("advisord: warm start: %d characterization(s) from %s", n, *cacheDir)
		}
	}

	srv := newServer(eng, params, scale, *cacheDir)
	log.Printf("advisord: listening on %s (workers=%d, quick=%v)", *addr, eng.Workers(), *quick)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	if err := httpSrv.ListenAndServe(); err != nil {
		fmt.Fprintln(os.Stderr, "advisord:", err)
		os.Exit(1)
	}
}
