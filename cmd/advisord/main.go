// Command advisord serves the paper's tuning flow as an HTTP service: batch
// advisory requests, cached device characterizations, health, status and
// Prometheus metrics. Characterizations are memoized in the execution
// engine's LRU cache (with singleflight deduplication), so concurrent
// requests for the same device share one simulation and warm traffic skips
// characterization entirely.
//
// Endpoints:
//
//	POST /v1/advise        {"requests":[{"device":"jetson-tx2","app":"shwfs","current":"sc"}]}
//	GET  /v1/characterize?device=jetson-agx-xavier
//	GET  /healthz
//	GET  /statusz
//	GET  /metrics          Prometheus text exposition
//
// Every response carries an X-Trace-Id header (generated, or echoed from the
// request) that also appears in the structured request log. With -debug-addr
// set, net/http/pprof is served on a separate listener. SIGINT/SIGTERM drain
// in-flight requests for up to -drain-timeout before the process exits.
//
// Usage:
//
//	advisord -addr :8025
//	advisord -addr :8025 -quick -workers 8 -ttl 1h -cache-dir /var/cache/advisord
//	advisord -addr :8025 -debug-addr 127.0.0.1:8026 -drain-timeout 30s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"igpucomm/internal/advisord"
	"igpucomm/internal/apps/catalog"
	"igpucomm/internal/buildinfo"
	"igpucomm/internal/engine"
	"igpucomm/internal/microbench"
)

func main() {
	addr := flag.String("addr", ":8025", "listen address")
	workers := flag.Int("workers", 0, "simulation parallelism (0 = GOMAXPROCS)")
	cacheEntries := flag.Int("cache-entries", 64, "characterization cache capacity")
	ttl := flag.Duration("ttl", 0, "characterization TTL (0 = never expires)")
	quick := flag.Bool("quick", false, "reduced micro-benchmark and workload scale")
	cacheDir := flag.String("cache-dir", "", "warm-start directory: load cached characterizations at boot, persist new ones")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this address (empty: disabled)")
	drain := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Get())
		return
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	slog.SetDefault(logger)

	params := microbench.DefaultParams()
	scale := catalog.Full
	if *quick {
		params = microbench.TestParams()
		scale = catalog.Quick
	}

	eng := engine.New(engine.Options{
		Workers:      *workers,
		CacheEntries: *cacheEntries,
		TTL:          *ttl,
	})
	if *cacheDir != "" {
		if _, err := os.Stat(*cacheDir); err == nil {
			n, err := eng.LoadCache(*cacheDir)
			if err != nil {
				logger.Error("warm start failed", "dir", *cacheDir, "err", err)
				os.Exit(1)
			}
			logger.Info("warm start", "characterizations", n, "dir", *cacheDir)
		}
	}

	srv := advisord.New(eng, params, scale, *cacheDir, logger)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           debugMux(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			logger.Info("pprof listening", "addr", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug server", "err", err)
			}
		}()
	}

	// Serve until SIGINT/SIGTERM, then drain: Shutdown stops accepting new
	// connections and waits for in-flight advise requests to complete, up
	// to the drain timeout.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr,
			"workers", eng.Workers(), "quick", *quick, "build", buildinfo.Get().String())
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		logger.Error("serve", "err", err)
		os.Exit(1)
	case <-ctx.Done():
		stop()
		logger.Info("shutting down, draining in-flight requests", "timeout", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Error("drain incomplete", "err", err)
			os.Exit(1)
		}
		if debugSrv != nil {
			_ = debugSrv.Shutdown(shutdownCtx)
		}
		logger.Info("shutdown complete")
	}
}

// debugMux builds the pprof handler set without relying on the global
// http.DefaultServeMux (which the main listener intentionally never serves).
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
