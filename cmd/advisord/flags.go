package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"igpucomm/internal/faults"
	"igpucomm/internal/fleet"
)

// config is advisord's parsed and validated flag set.
type config struct {
	addr         string
	workers      int
	cacheEntries int
	ttl          time.Duration
	quick        bool
	cacheDir     string
	debugAddr    string
	drain        time.Duration
	version      bool

	requestTimeout   time.Duration
	maxConcurrent    int
	maxQueue         int
	breakerThreshold int
	breakerCooldown  time.Duration

	faultSpec string
	faultSeed int64

	shardID     string
	peers       string
	fleetVNodes int
	adminAddr   string
}

// errFlagParse marks errors flag.Parse already reported on stderr, so main
// can exit 2 without printing them twice.
var errFlagParse = errors.New("flag parse error")

// parseConfig parses args into a config and validates it. A returned error
// is a usage error: main prints it (unless flag already did) and exits 2
// before binding any listener.
func parseConfig(args []string) (*config, error) {
	c := &config{}
	fs := flag.NewFlagSet("advisord", flag.ContinueOnError)
	fs.StringVar(&c.addr, "addr", ":8025", "listen address")
	fs.IntVar(&c.workers, "workers", 0, "simulation parallelism (0 = GOMAXPROCS)")
	fs.IntVar(&c.cacheEntries, "cache-entries", 64, "characterization cache capacity")
	fs.DurationVar(&c.ttl, "ttl", 0, "characterization TTL (0 = never expires)")
	fs.BoolVar(&c.quick, "quick", false, "reduced micro-benchmark and workload scale")
	fs.StringVar(&c.cacheDir, "cache-dir", "", "warm-start directory: load cached characterizations at boot, persist new ones")
	fs.StringVar(&c.debugAddr, "debug-addr", "", "serve net/http/pprof on this address (empty: disabled)")
	fs.DurationVar(&c.drain, "drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
	fs.BoolVar(&c.version, "version", false, "print build information and exit")
	fs.DurationVar(&c.requestTimeout, "request-timeout", 30*time.Second, "per-request deadline on the /v1 endpoints")
	fs.IntVar(&c.maxConcurrent, "max-concurrent", 0, "concurrent /v1 requests before queueing (0 = 64)")
	fs.IntVar(&c.maxQueue, "max-queue", 0, "queued /v1 requests before shedding with 429 (0 = 2*max-concurrent)")
	fs.IntVar(&c.breakerThreshold, "breaker-threshold", 5, "consecutive characterization failures that trip the circuit breaker")
	fs.DurationVar(&c.breakerCooldown, "breaker-cooldown", 10*time.Second, "how long the breaker stays open before a probe")
	fs.StringVar(&c.faultSpec, "faults", "", "fault-injection spec (point:mode[:k=v,...];...); also read from FAULTS when empty")
	fs.Int64Var(&c.faultSeed, "faults-seed", 1, "fault-injection plan seed")
	fs.StringVar(&c.shardID, "shard-id", "", "this replica's fleet shard ID (empty: fleet mode off)")
	fs.StringVar(&c.peers, "peers", "", "comma-separated id=url fleet membership, this shard included")
	fs.IntVar(&c.fleetVNodes, "fleet-vnodes", 0, fmt.Sprintf("virtual nodes per shard on the hash ring (0 = %d)", fleet.DefaultVNodes))
	fs.StringVar(&c.adminAddr, "admin-addr", "", "serve the fleet admin API on this address (empty: disabled)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %v", errFlagParse, err)
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// validate rejects configurations that would boot a broken server: a
// non-positive drain or request deadline, a pprof listener shadowing the main
// one, an unusable cache directory, bad breaker/admission bounds, or an
// unparseable fault spec.
func (c *config) validate() error {
	if c.version {
		return nil // nothing else matters; main exits after printing
	}
	if c.drain <= 0 {
		return fmt.Errorf("-drain-timeout must be positive, got %v", c.drain)
	}
	if c.requestTimeout <= 0 {
		return fmt.Errorf("-request-timeout must be positive, got %v", c.requestTimeout)
	}
	if c.maxConcurrent < 0 {
		return fmt.Errorf("-max-concurrent must be >= 0, got %d", c.maxConcurrent)
	}
	if c.maxQueue < 0 {
		return fmt.Errorf("-max-queue must be >= 0, got %d", c.maxQueue)
	}
	if c.breakerThreshold <= 0 {
		return fmt.Errorf("-breaker-threshold must be positive, got %d", c.breakerThreshold)
	}
	if c.breakerCooldown <= 0 {
		return fmt.Errorf("-breaker-cooldown must be positive, got %v", c.breakerCooldown)
	}
	if c.debugAddr != "" && c.debugAddr == c.addr {
		return fmt.Errorf("-debug-addr %q duplicates -addr; pprof needs its own listener", c.debugAddr)
	}
	if c.cacheDir != "" {
		if err := checkCacheDir(c.cacheDir); err != nil {
			return err
		}
	}
	if c.faultSpec != "" {
		if _, err := faults.ParsePlan(c.faultSpec, c.faultSeed); err != nil {
			return fmt.Errorf("-faults: %w", err)
		}
	}
	if err := c.validateFleet(); err != nil {
		return err
	}
	return nil
}

// validateFleet rejects half-configured fleet flags: fleet mode is all or
// nothing, keyed off -shard-id, and a membership list that does not name this
// shard would build a ring the replica is not on.
func (c *config) validateFleet() error {
	if c.shardID == "" {
		if c.peers != "" {
			return errors.New("-peers requires -shard-id")
		}
		if c.adminAddr != "" {
			return errors.New("-admin-addr requires -shard-id")
		}
		if c.fleetVNodes != 0 {
			return errors.New("-fleet-vnodes requires -shard-id")
		}
		return nil
	}
	if c.fleetVNodes < 0 {
		return fmt.Errorf("-fleet-vnodes must be >= 0, got %d", c.fleetVNodes)
	}
	if c.adminAddr != "" && (c.adminAddr == c.addr || c.adminAddr == c.debugAddr) {
		return fmt.Errorf("-admin-addr %q duplicates another listener; the admin API needs its own", c.adminAddr)
	}
	shards, err := parsePeers(c.peers)
	if err != nil {
		return err
	}
	for _, sh := range shards {
		if sh.ID == c.shardID {
			return nil
		}
	}
	return fmt.Errorf("-peers does not include -shard-id %q; list every member, this shard included", c.shardID)
}

// parsePeers reads a -peers membership list ("a=http://h1:8025,b=http://h2:8025")
// into shards. Duplicate IDs are rejected here for a better message than the
// ring's own validation would give.
func parsePeers(spec string) ([]fleet.Shard, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, errors.New("-peers must list the fleet membership as id=url pairs")
	}
	seen := make(map[string]bool)
	var shards []fleet.Shard
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		id, url = strings.TrimSpace(id), strings.TrimSpace(url)
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("-peers entry %q is not id=url", part)
		}
		if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
			return nil, fmt.Errorf("-peers entry %q: url must start with http:// or https://", part)
		}
		if seen[id] {
			return nil, fmt.Errorf("-peers lists shard %q twice", id)
		}
		seen[id] = true
		shards = append(shards, fleet.Shard{ID: id, URL: url})
	}
	if len(shards) == 0 {
		return nil, errors.New("-peers must list the fleet membership as id=url pairs")
	}
	return shards, nil
}

// fleetState builds this replica's fleet state from the validated flags; nil
// when fleet mode is off.
func (c *config) fleetState() (*fleet.State, error) {
	if c.shardID == "" {
		return nil, nil
	}
	shards, err := parsePeers(c.peers)
	if err != nil {
		return nil, err
	}
	return fleet.NewState(c.shardID, shards, c.fleetVNodes)
}

// checkCacheDir verifies that an existing -cache-dir is a writable directory
// by probing with a temp file, so permission problems surface at boot instead
// of as a failed persist hours later. A missing directory is fine — SaveCache
// creates it.
func checkCacheDir(dir string) error {
	fi, err := os.Stat(dir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("-cache-dir %q: %w", dir, err)
	}
	if !fi.IsDir() {
		return fmt.Errorf("-cache-dir %q is not a directory", dir)
	}
	probe, err := os.CreateTemp(dir, ".advisord-probe*")
	if err != nil {
		return fmt.Errorf("-cache-dir %q is not writable: %w", dir, err)
	}
	probe.Close()
	os.Remove(probe.Name())
	return nil
}

// faultPlan builds the active fault plan from -faults (which wins) or the
// FAULTS/FAULTS_SEED environment; nil when neither configures one. The spec
// was already syntax-checked by validate, but activation can still fail on a
// capability mismatch (e.g. corrupt on a point that only yields errors).
func (c *config) faultPlan() (*faults.Plan, error) {
	if c.faultSpec != "" {
		return faults.ParsePlan(c.faultSpec, c.faultSeed)
	}
	return faults.ParseEnv()
}

// usageError prints err the way flag's own parse failures do and exits 2.
func usageError(err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", filepath.Base(os.Args[0]), err)
	os.Exit(2)
}
