package main

import (
	"strings"
	"testing"
)

func TestParseConfigFleetOff(t *testing.T) {
	c, err := parseConfig(nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.shardID != "" || c.peers != "" || c.adminAddr != "" || c.fleetVNodes != 0 {
		t.Errorf("fleet defaults = %+v", c)
	}
	st, err := c.fleetState()
	if err != nil || st != nil {
		t.Fatalf("fleetState without -shard-id = %v, %v, want nil, nil", st, err)
	}
}

func TestParseConfigFleetValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"peers without shard-id", []string{"-peers", "a=http://h:1"}, "-shard-id"},
		{"admin-addr without shard-id", []string{"-admin-addr", ":8125"}, "-shard-id"},
		{"vnodes without shard-id", []string{"-fleet-vnodes", "16"}, "-shard-id"},
		{"negative vnodes", []string{"-shard-id", "a", "-peers", "a=http://h:1", "-fleet-vnodes", "-1"}, "-fleet-vnodes"},
		{"admin duplicates addr", []string{"-shard-id", "a", "-peers", "a=http://h:1", "-addr", ":9", "-admin-addr", ":9"}, "-admin-addr"},
		{"empty peers", []string{"-shard-id", "a"}, "-peers"},
		{"peer entry not id=url", []string{"-shard-id", "a", "-peers", "nonsense"}, "id=url"},
		{"peer url without scheme", []string{"-shard-id", "a", "-peers", "a=h1:8025"}, "http"},
		{"duplicate peer", []string{"-shard-id", "a", "-peers", "a=http://h:1,a=http://h:2"}, "twice"},
		{"self missing from peers", []string{"-shard-id", "z", "-peers", "a=http://h:1,b=http://h:2"}, "does not include"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseConfig(tc.args)
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %s", err, tc.want)
			}
		})
	}
}

func TestFleetStateFromFlags(t *testing.T) {
	c, err := parseConfig([]string{
		"-shard-id", "b",
		"-peers", " a = http://h1:8025 , b = http://h2:8025 ,",
		"-fleet-vnodes", "16",
		"-admin-addr", ":8125",
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.fleetState()
	if err != nil {
		t.Fatal(err)
	}
	if st.Self() != "b" {
		t.Errorf("Self = %q", st.Self())
	}
	if got := st.Ring().Shards(); len(got) != 2 {
		t.Errorf("membership = %v", got)
	}
	if st.Ring().VNodes() != 16 {
		t.Errorf("vnodes = %d", st.Ring().VNodes())
	}
}
