package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseConfigDefaults(t *testing.T) {
	c, err := parseConfig(nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.addr != ":8025" || c.drain != 30*time.Second || c.requestTimeout != 30*time.Second {
		t.Errorf("defaults = %+v", c)
	}
	if c.breakerThreshold != 5 || c.breakerCooldown != 10*time.Second {
		t.Errorf("breaker defaults = %d / %v", c.breakerThreshold, c.breakerCooldown)
	}
}

func TestParseConfigRejectsBadValues(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"zero drain", []string{"-drain-timeout", "0s"}, "-drain-timeout"},
		{"negative drain", []string{"-drain-timeout", "-5s"}, "-drain-timeout"},
		{"zero request timeout", []string{"-request-timeout", "0s"}, "-request-timeout"},
		{"negative request timeout", []string{"-request-timeout", "-1s"}, "-request-timeout"},
		{"negative max-concurrent", []string{"-max-concurrent", "-1"}, "-max-concurrent"},
		{"negative max-queue", []string{"-max-queue", "-2"}, "-max-queue"},
		{"zero breaker threshold", []string{"-breaker-threshold", "0"}, "-breaker-threshold"},
		{"zero breaker cooldown", []string{"-breaker-cooldown", "0s"}, "-breaker-cooldown"},
		{"debug addr duplicates addr", []string{"-addr", ":9000", "-debug-addr", ":9000"}, "-debug-addr"},
		{"garbage fault spec", []string{"-faults", "nonsense"}, "-faults"},
		{"unknown fault mode", []string{"-faults", "engine.characterize:explode"}, "-faults"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseConfig(tc.args)
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name %s", err, tc.want)
			}
		})
	}
}

func TestParseConfigFlagErrorsAreMarked(t *testing.T) {
	_, err := parseConfig([]string{"-no-such-flag"})
	if !errors.Is(err, errFlagParse) {
		t.Errorf("parse failure not marked: %v", err)
	}
}

func TestParseConfigCacheDir(t *testing.T) {
	// A missing directory is fine: SaveCache creates it.
	if _, err := parseConfig([]string{"-cache-dir", filepath.Join(t.TempDir(), "nope")}); err != nil {
		t.Errorf("missing cache dir rejected: %v", err)
	}
	// An existing directory is fine.
	if _, err := parseConfig([]string{"-cache-dir", t.TempDir()}); err != nil {
		t.Errorf("writable cache dir rejected: %v", err)
	}
	// A file is not a cache directory.
	f := filepath.Join(t.TempDir(), "afile")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := parseConfig([]string{"-cache-dir", f}); err == nil {
		t.Error("file accepted as -cache-dir")
	}
	// An unwritable directory is rejected (root bypasses permission bits,
	// so this leg only runs unprivileged).
	if os.Geteuid() != 0 {
		dir := t.TempDir()
		if err := os.Chmod(dir, 0o555); err != nil {
			t.Fatal(err)
		}
		if _, err := parseConfig([]string{"-cache-dir", dir}); err == nil {
			t.Error("unwritable directory accepted as -cache-dir")
		}
	}
}

func TestFaultPlanFlagBeatsEnv(t *testing.T) {
	t.Setenv("FAULTS", "engine.explore:error")
	c, err := parseConfig([]string{"-faults", "engine.characterize:error:every=2", "-faults-seed", "7"})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := c.faultPlan()
	if err != nil || plan == nil {
		t.Fatalf("faultPlan = %v, %v", plan, err)
	}

	// Without the flag, the environment supplies the plan.
	c2, err := parseConfig(nil)
	if err != nil {
		t.Fatal(err)
	}
	plan2, err := c2.faultPlan()
	if err != nil || plan2 == nil {
		t.Fatalf("env faultPlan = %v, %v", plan2, err)
	}

	// And with neither, there is none.
	t.Setenv("FAULTS", "")
	plan3, err := c2.faultPlan()
	if err != nil || plan3 != nil {
		t.Fatalf("empty env faultPlan = %v, %v, want nil, nil", plan3, err)
	}
}
