// Command hazardcheck is the framework's verification gate. With no flags it
// statically verifies every catalogued platform × case-study application ×
// communication model: the model's buffer placement (no overlapping or empty
// allocations), the §III-C tiled schedule (per-phase CPU/GPU tile
// disjointness and barrier ordering under a vector-clock model), and a
// transaction-level replay of the kernel's coalesced trace interleaved with
// the CPU's accesses and the model's coherence protocol (RAW/WAR/WAW and
// flush-ordering hazards).
//
// With -lint it runs the repo's Go-source gate as a thin alias over the
// shared igpulint analyzer set (internal/analysis): the whole module is
// type-checked and every registered rule runs — rawaddr, unitsmix,
// validatewrap, ctxflow, spanend, faultpoint, lockdiscipline, allochot,
// metricname — without the baseline comparison (cmd/igpulint owns that).
// With -lint-docs it checks that every exported identifier in the contract
// packages (DocPackages) carries a doc comment; with -links it checks that
// every relative markdown link (and #anchor) in
// README/DESIGN/EXPERIMENTS/ROADMAP and docs/ resolves.
//
// Usage:
//
//	hazardcheck                            # verify all combinations
//	hazardcheck -device jetson-tx2 -app shwfs -model zc
//	hazardcheck -no-trace                  # schedule + layout proofs only
//	hazardcheck -lint ./...                # run the Go analysis gate
//	hazardcheck -lint-docs                 # exported-doc-comment gate
//	hazardcheck -links                     # markdown relative-link gate
//
// Exit status 1 when any hazard or lint finding is reported.
package main

import (
	"flag"
	"fmt"
	"igpucomm/internal/buildinfo"
	"os"
	"path/filepath"
	"strings"

	"igpucomm/internal/analysis"
	"igpucomm/internal/apps/lanedet"
	"igpucomm/internal/apps/orbslam"
	"igpucomm/internal/apps/shwfs"
	"igpucomm/internal/comm"
	"igpucomm/internal/devices"
)

var appNames = []string{"shwfs", "orbslam", "lanedet"}

func buildWorkload(app string) (comm.Workload, error) {
	switch app {
	case "shwfs":
		return shwfs.Workload(shwfs.DefaultWorkloadParams())
	case "orbslam":
		return orbslam.Workload(orbslam.DefaultWorkloadParams())
	case "lanedet":
		return lanedet.Workload(lanedet.DefaultWorkloadParams())
	}
	return comm.Workload{}, fmt.Errorf("unknown app %q (have %s)", app, strings.Join(appNames, ", "))
}

func main() {
	lint := flag.String("lint", "", "run the Go analysis gate on this path (e.g. ./...) instead of verifying schedules")
	lintDocs := flag.Bool("lint-docs", false, "check exported identifiers in the contract packages for doc comments")
	links := flag.Bool("links", false, "check relative markdown links in the documentation set")
	device := flag.String("device", "", "restrict to one platform (default: all)")
	app := flag.String("app", "", "restrict to one application (default: all)")
	model := flag.String("model", "", "restrict to one communication model (default: all)")
	noTrace := flag.Bool("no-trace", false, "skip the transaction-level trace replay")
	verbose := flag.Bool("v", false, "print every finding, not just the per-combination summary")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Get())
		return
	}

	if *lint != "" {
		os.Exit(runLint(*lint))
	}
	if *lintDocs || *links {
		os.Exit(runDocGates(*lintDocs, *links))
	}
	os.Exit(runVerify(*device, *app, *model, !*noTrace, *verbose))
}

// runLint is a thin alias over the shared igpulint analyzer set: it runs
// the full type-aware suite (without the baseline comparison — use
// cmd/igpulint for that) so `hazardcheck -lint` and `igpulint` can never
// disagree about what a violation is.
func runLint(path string) int {
	// "./..." and friends mean "the tree from here"; a plain directory is
	// linted as given.
	sub := strings.TrimSuffix(path, "...")
	sub = strings.TrimSuffix(sub, "/")
	if sub == "" {
		sub = "."
	}
	sub, err := filepath.Abs(sub)
	fatalIf(err)
	if _, err := os.Stat(sub); err != nil {
		fatalIf(fmt.Errorf("lint path: %w", err))
	}
	// The scoping lists in the analysis config are module-root-relative, so
	// always lint from the enclosing module and filter the findings down to
	// the requested subtree.
	root := moduleRoot(sub)
	cfg := analysis.DefaultConfig()
	findings, err := analysis.RunRepo(root, &cfg, nil)
	fatalIf(err)
	if sub != root {
		rel, err := filepath.Rel(root, sub)
		fatalIf(err)
		prefix := filepath.ToSlash(rel)
		kept := findings[:0]
		for _, f := range findings {
			if f.Pos.Filename == prefix || strings.HasPrefix(f.Pos.Filename, prefix+"/") {
				kept = append(kept, f)
			}
		}
		findings = kept
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(os.Stderr, "hazardcheck: %d lint finding(s)\n", n)
		return 1
	}
	fmt.Println("hazardcheck: lint clean")
	return 0
}

// runDocGates runs the documentation gates from the module root: exported
// doc comments in the contract packages and/or markdown link resolution.
func runDocGates(docs, links bool) int {
	cwd, err := os.Getwd()
	fatalIf(err)
	root := moduleRoot(cwd)
	var findings []analysis.Finding
	if docs {
		fs, err := analysis.LintExportedDocs(root, analysis.DocPackages())
		fatalIf(err)
		findings = append(findings, fs...)
	}
	if links {
		files, err := analysis.MarkdownFiles(root)
		fatalIf(err)
		fs, err := analysis.CheckMarkdownLinks(root, files)
		fatalIf(err)
		findings = append(findings, fs...)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(os.Stderr, "hazardcheck: %d documentation finding(s)\n", n)
		return 1
	}
	fmt.Println("hazardcheck: documentation gates clean")
	return 0
}

func runVerify(device, app, model string, trace, verbose bool) int {
	devs, all := []string{}, []string{}
	for _, cfg := range devices.All() {
		all = append(all, cfg.Name)
		if device == "" || cfg.Name == device {
			devs = append(devs, cfg.Name)
		}
	}
	if len(devs) == 0 {
		fatalIf(fmt.Errorf("unknown device %q (have %s)", device, strings.Join(all, ", ")))
	}
	apps := appNames
	if app != "" {
		apps = []string{app}
	}
	models := comm.AllModels()
	if model != "" {
		m, err := comm.ByName(model)
		fatalIf(err)
		models = []comm.Model{m}
	}

	combos, bad := 0, 0
	for _, devName := range devs {
		for _, appName := range apps {
			w, err := buildWorkload(appName)
			fatalIf(err)
			for _, m := range models {
				s, err := devices.NewSoC(devName)
				fatalIf(err)
				combos++

				rep, err := comm.Verify(s, w, m)
				fatalIf(err)
				if trace {
					trep, terr := comm.TraceCheck(s, w, m, 0)
					fatalIf(terr)
					rep.Merge(trep)
				}

				status := "ok"
				if !rep.OK() {
					status = fmt.Sprintf("%d HAZARD(S)", len(rep.Findings))
					bad++
				}
				fmt.Printf("%-18s %-8s %-9s %6d checks  %s\n",
					devName, appName, m.Name(), rep.Checked, status)
				if verbose || !rep.OK() {
					for _, f := range rep.Findings {
						fmt.Printf("    %s\n", f)
					}
				}
			}
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "hazardcheck: %d of %d combinations refuted\n", bad, combos)
		return 1
	}
	fmt.Printf("hazardcheck: all %d combinations verified\n", combos)
	return 0
}

// moduleRoot walks up from dir to the nearest directory containing go.mod.
// If none is found (linting a bare tree), dir itself is the root.
func moduleRoot(dir string) string {
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return dir
		}
		d = parent
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hazardcheck:", err)
		os.Exit(1)
	}
}
