// Command igpulint is the repo's type-aware static-analysis gate: it loads
// and type-checks the whole module with go/parser + go/types (stdlib only),
// runs every registered analyzer — the three original syntactic rules
// (rawaddr, unitsmix, validatewrap) plus the subsystem-contract rules added
// with the framework (ctxflow, spanend, faultpoint, lockdiscipline,
// allochot, metricname) — and compares the findings against the committed
// baseline (lint/baseline.json by default).
//
// Drift fails in both directions: a finding absent from the baseline is a
// regression, and a baseline entry no finding matches is a fixed violation
// whose entry must be deleted, so the ratchet only ever tightens. Inline
// suppressions use `//igpulint:ignore <rule> <justification>` on (or
// directly above) the flagged line; a justification is mandatory and an
// unused directive is itself a finding.
//
// Usage:
//
//	igpulint ./...                      # lint the module, text output
//	igpulint -format sarif ./...        # SARIF 2.1.0 (CI artifact upload)
//	igpulint -format json ./...
//	igpulint -rules ctxflow,spanend ./...
//	igpulint -baseline lint/baseline.json ./...
//	igpulint -update-baseline           # rewrite the baseline from current findings
//	igpulint -list                      # print the analyzer catalog
//
// Exit status 1 when new findings, stale baseline entries, or unjustified
// baseline entries are reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"igpucomm/internal/analysis"
	"igpucomm/internal/buildinfo"
)

func main() {
	format := flag.String("format", "text", "output format: text, json or sarif")
	baselinePath := flag.String("baseline", "lint/baseline.json", "baseline file (module-relative); missing file means empty baseline")
	updateBaseline := flag.Bool("update-baseline", false, "rewrite the baseline from current findings and exit")
	rules := flag.String("rules", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "print the analyzer catalog and exit")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Get())
		return
	}
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, sub, err := lintRoot(flag.Arg(0))
	fatalIf(err)

	var only []string
	if *rules != "" {
		only = strings.Split(*rules, ",")
	}
	cfg := analysis.DefaultConfig()
	findings, err := analysis.RunRepo(root, &cfg, only)
	fatalIf(err)
	if sub != "" {
		findings = filterSubtree(findings, sub)
	}

	if *updateBaseline {
		full := filepath.Join(root, filepath.FromSlash(*baselinePath))
		fatalIf(os.MkdirAll(filepath.Dir(full), 0o755))
		fatalIf(analysis.WriteBaseline(full, findings))
		fmt.Fprintf(os.Stderr, "igpulint: wrote %d finding(s) to %s — fill in each entry's \"why\" or fix it\n",
			len(findings), *baselinePath)
		return
	}

	baseline, err := analysis.LoadBaseline(filepath.Join(root, filepath.FromSlash(*baselinePath)))
	fatalIf(err)
	drift := analysis.CompareBaseline(baseline, findings)

	report := drift.New
	switch *format {
	case "text":
		fatalIf(analysis.WriteText(os.Stdout, report))
		for _, e := range drift.Stale {
			fmt.Printf("%s: %s: baseline entry is stale (violation fixed); remove it: %s\n", e.File, e.Rule, e.Msg)
		}
		for _, e := range drift.Unjustified {
			fmt.Printf("%s: %s: baseline entry has no justification; fill in \"why\" or fix it: %s\n", e.File, e.Rule, e.Msg)
		}
	case "json":
		fatalIf(analysis.WriteJSON(os.Stdout, report))
	case "sarif":
		fatalIf(analysis.WriteSARIF(os.Stdout, report))
	default:
		fatalIf(fmt.Errorf("unknown format %q (want text, json or sarif)", *format))
	}

	if !drift.Clean() {
		fmt.Fprintf(os.Stderr, "igpulint: %d new finding(s), %d stale baseline entr(ies), %d unjustified entr(ies)\n",
			len(drift.New), len(drift.Stale), len(drift.Unjustified))
		os.Exit(1)
	}
	if drift.Accepted > 0 {
		fmt.Fprintf(os.Stderr, "igpulint: clean (%d baselined finding(s) accepted)\n", drift.Accepted)
	} else {
		fmt.Fprintln(os.Stderr, "igpulint: clean")
	}
}

// lintRoot resolves the positional path argument ("./...", a directory, or
// empty for the current tree) to the enclosing module root plus the
// requested subtree filter (empty when the whole module is in scope).
func lintRoot(arg string) (root, sub string, err error) {
	path := strings.TrimSuffix(arg, "...")
	path = strings.TrimSuffix(path, "/")
	if path == "" {
		path = "."
	}
	abs, err := filepath.Abs(path)
	if err != nil {
		return "", "", err
	}
	if _, err := os.Stat(abs); err != nil {
		return "", "", fmt.Errorf("lint path: %w", err)
	}
	root = abs
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			root = d
			break
		}
		parent := filepath.Dir(d)
		if parent == d {
			break
		}
		d = parent
	}
	if abs != root {
		rel, err := filepath.Rel(root, abs)
		if err != nil {
			return "", "", err
		}
		sub = filepath.ToSlash(rel)
	}
	return root, sub, nil
}

// filterSubtree keeps findings whose file sits under the module-relative
// subtree.
func filterSubtree(fs []analysis.Finding, sub string) []analysis.Finding {
	kept := fs[:0]
	for _, f := range fs {
		if f.Pos.Filename == sub || strings.HasPrefix(f.Pos.Filename, sub+"/") {
			kept = append(kept, f)
		}
	}
	return kept
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "igpulint:", err)
		os.Exit(1)
	}
}
