package main

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"igpucomm/internal/apps/catalog"
	"igpucomm/internal/engine"
	"igpucomm/internal/framework"
	"igpucomm/internal/microbench"
	"igpucomm/internal/telemetry"
)

// TestSweepTraceCoversAllCombinations is the acceptance check for
// `advisor -sweep -trace`: the quick-scale 3 devices x 3 apps x 5 models
// sweep must record at least 45 spans — one engine.explore.model span per
// measured point — and export them as a loadable Chrome trace.
func TestSweepTraceCoversAllCombinations(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs the full quick-scale simulation")
	}
	tracer := telemetry.NewTracer(telemetry.TracerOptions{})
	ctx := telemetry.WithTracer(context.Background(), tracer)
	eng := engine.New(engine.Options{Workers: 4})

	if err := runSweep(ctx, eng, microbench.TestParams(), catalog.Quick, io.Discard, "", tracer); err != nil {
		t.Fatal(err)
	}

	if tracer.Len() < 45 {
		t.Fatalf("sweep recorded %d spans, want >= 45", tracer.Len())
	}
	points := 0
	for _, s := range tracer.Spans() {
		if s.Name == "engine.explore.model" {
			points++
		}
	}
	if points != 45 {
		t.Fatalf("got %d engine.explore.model spans, want 45 (3 devices x 3 apps x 5 models)", points)
	}

	var b strings.Builder
	if err := tracer.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	spanEvents := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			spanEvents++
		}
	}
	if spanEvents < 45 {
		t.Fatalf("exported trace has %d span events, want >= 45", spanEvents)
	}
}

// TestSweepWithoutTracerStillRuns guards the nil-span path: the sweep must
// work untraced, paying only context lookups.
func TestSweepWithoutTracerStillRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs the full quick-scale simulation")
	}
	eng := engine.New(engine.Options{Workers: 4})
	var out strings.Builder
	if err := runSweep(context.Background(), eng, microbench.TestParams(), catalog.Quick, &out, "", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "swept 45 device x app x model points") {
		t.Fatalf("unexpected sweep summary:\n%s", out.String())
	}
}

// TestSweepHeatArtifact runs the heat-enabled sweep and checks the written
// artifact: schema-versioned, loadable, one entry per measured combination,
// every entry carrying buffer rows and hints.
func TestSweepHeatArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs the full quick-scale simulation")
	}
	eng := engine.New(engine.Options{Workers: 4})
	path := filepath.Join(t.TempDir(), "heat.json")
	if err := runSweep(context.Background(), eng, microbench.TestParams(), catalog.Quick, io.Discard, path, nil); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	art, err := framework.LoadHeatArtifact(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Entries) != 45 {
		t.Fatalf("artifact has %d entries, want 45 (3 devices x 3 apps x 5 models)", len(art.Entries))
	}
	for _, e := range art.Entries {
		if len(e.Buffers) == 0 || len(e.Hints) == 0 {
			t.Fatalf("entry %s/%s/%s missing buffers or hints", e.Platform, e.Workload, e.Model)
		}
	}
}
