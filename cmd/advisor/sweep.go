package main

import (
	"context"
	"fmt"
	"io"

	"igpucomm/internal/apps/catalog"
	"igpucomm/internal/comm"
	"igpucomm/internal/devices"
	"igpucomm/internal/engine"
	"igpucomm/internal/framework"
	"igpucomm/internal/microbench"
	"igpucomm/internal/telemetry"
)

// runSweep explores every device x app x model combination (3 x 3 x 5 = 45
// measurement points with the extended model set) through the engine and
// prints the measured ranking per combination. Under a tracer, every point
// shows up as an engine.explore.model span, which makes the sweep the
// canonical workload for `advisor -trace` / `make trace`. With heatPath set
// the sweep runs heat-enabled and additionally writes the per-buffer heat
// artifact (plus Chrome counter samples when tracing).
func runSweep(ctx context.Context, eng *engine.Engine, params microbench.Params, scale catalog.Scale, out io.Writer, heatPath string, tracer *telemetry.Tracer) error {
	ctx, sweep := telemetry.Start(ctx, "advisor.sweep")
	defer sweep.End()

	models := comm.AllModels()
	combos := 0
	var heat framework.HeatArtifact
	for _, cfg := range devices.All() {
		for _, app := range catalog.Names() {
			w, err := catalog.ByName(app, scale)
			if err != nil {
				return err
			}
			explore := eng.Explore
			if heatPath != "" {
				explore = eng.ExploreHeat
			}
			exp, err := explore(ctx, cfg, w, models)
			if err != nil {
				return fmt.Errorf("explore %s/%s: %w", cfg.Name, app, err)
			}
			if heatPath != "" {
				entries := framework.HeatEntriesFromExploration(exp)
				emitHeatCounters(tracer, entries)
				heat.Entries = append(heat.Entries, entries...)
			}
			combos += len(models)
			fmt.Fprintf(out, "%s / %s\n", cfg.Name, app)
			for i, cand := range exp.Ranked {
				marker := " "
				if i == 0 {
					marker = "*"
				}
				fmt.Fprintf(out, "  %s %d. %-8s %v\n", marker, i+1, cand.Model, cand.Total.Duration())
			}
		}
	}
	sweep.SetAttr("points", fmt.Sprintf("%d", combos))
	fmt.Fprintf(out, "\nswept %d device x app x model points\n", combos)
	if heatPath != "" {
		return writeHeatArtifact(heatPath, heat)
	}
	return nil
}
