package main

import (
	"fmt"
	"os"

	"igpucomm/internal/framework"
	"igpucomm/internal/telemetry"
)

// writeHeatArtifact writes the per-buffer heat artifact as schema-versioned
// JSON to path.
func writeHeatArtifact(path string, art framework.HeatArtifact) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = framework.SaveHeatArtifact(f, art)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	buffers := 0
	for _, e := range art.Entries {
		buffers += len(e.Buffers)
	}
	fmt.Printf("heat map written to %s (%d entries, %d buffer rows)\n",
		path, len(art.Entries), buffers)
	return nil
}

// emitHeatCounters records each heat entry as a Chrome counter sample — one
// counter track per device/app/model point, buffer heat scores as its series
// — so `advisor -trace -heatmap` renders heat next to the span timeline.
// No-ops without a tracer.
func emitHeatCounters(tracer *telemetry.Tracer, entries []framework.HeatEntry) {
	for _, e := range entries {
		values := make([]telemetry.CounterValue, 0, len(e.Buffers))
		for _, b := range e.Buffers {
			values = append(values, telemetry.CounterValue{Series: b.Name, Value: b.HeatScore})
		}
		tracer.Counter(fmt.Sprintf("heat %s/%s/%s", e.Platform, e.Workload, e.Model), values...)
	}
}
