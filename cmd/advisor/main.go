// Command advisor runs the paper's full tuning flow (Fig 2) for one of the
// case-study applications on one platform: characterize the device, profile
// the application, classify its cache dependence, and print the recommended
// communication model with the estimated speedup.
//
// With -trace, every phase of the run (characterization, sweep points,
// profiling, advisory) is recorded as a span and written as a Chrome
// trace_event JSON file loadable in chrome://tracing or Perfetto. With
// -sweep, the advisor instead explores every device × app × model
// combination and prints the measured ranking table.
//
// Usage:
//
//	advisor -device jetson-agx-xavier -app shwfs -current sc
//	advisor -device jetson-tx2 -app orbslam -current zc -quick
//	advisor -quick -sweep -trace trace.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"igpucomm/internal/apps/catalog"
	"igpucomm/internal/buildinfo"
	"igpucomm/internal/comm"
	"igpucomm/internal/devices"
	"igpucomm/internal/engine"
	"igpucomm/internal/framework"
	"igpucomm/internal/microbench"
	"igpucomm/internal/soc"
	"igpucomm/internal/telemetry"
)

func main() {
	device := flag.String("device", devices.XavierName, "platform name")
	app := flag.String("app", "shwfs", "application: shwfs, orbslam or lanedet")
	current := flag.String("current", "sc", "currently implemented model: sc, um, zc")
	quick := flag.Bool("quick", false, "reduced micro-benchmark scale")
	verify := flag.Bool("verify", false, "also measure every model and report the true ranking")
	charFile := flag.String("char", "", "load a saved characterization instead of re-running the micro-benchmarks")
	workers := flag.Int("workers", 0, "simulation parallelism (0 = GOMAXPROCS)")
	sweep := flag.Bool("sweep", false, "explore every device x app x model combination instead of advising one")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON file of the run to this path")
	heatOut := flag.String("heatmap", "", "run heat-enabled and write the per-buffer heat artifact (JSON) to this path")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Get())
		return
	}

	ctx := context.Background()
	var tracer *telemetry.Tracer
	if *traceOut != "" {
		tracer = telemetry.NewTracer(telemetry.TracerOptions{})
		ctx = telemetry.WithTracer(ctx, tracer)
		ctx = telemetry.WithTraceID(ctx, tracer.TraceID())
	}

	eng := engine.New(engine.Options{Workers: *workers})
	params := microbench.DefaultParams()
	scale := catalog.Full
	if *quick {
		params = microbench.TestParams()
		scale = catalog.Quick
	}

	if *sweep {
		err := runSweep(ctx, eng, params, scale, os.Stdout, *heatOut, tracer)
		fatalIf(err)
		writeTrace(tracer, *traceOut)
		return
	}

	w, err := catalog.ByName(*app, scale)
	fatalIf(err)

	cfg, err := devices.ByName(*device)
	fatalIf(err)
	s := soc.New(cfg)

	var char framework.Characterization
	if *charFile != "" {
		f, err := os.Open(*charFile)
		fatalIf(err)
		char, err = framework.LoadCharacterization(f)
		f.Close()
		fatalIf(err)
		if char.Platform != *device {
			fatalIf(fmt.Errorf("characterization is for %q, not %q", char.Platform, *device))
		}
		fmt.Printf("loaded characterization of %s from %s\n", char.Platform, *charFile)
	} else {
		fmt.Printf("characterizing %s ...\n", *device)
		char, err = eng.Characterize(ctx, cfg, params)
		fatalIf(err)
	}

	fmt.Printf("profiling %s under %s ...\n", *app, *current)
	rec, err := framework.AdviseWorkload(ctx, char, s, w, *current)
	fatalIf(err)

	fmt.Println()
	fmt.Printf("application:        %s on %s (currently %s)\n", rec.Workload, rec.Platform, rec.CurrentModel)
	fmt.Printf("CPU cache usage:    %.2f%% (threshold %.2f%%, dependent: %v)\n",
		rec.CPUUsage*100, char.Thresholds.CPUCache*100, rec.CPUDependent)
	fmt.Printf("GPU cache usage:    %.1f%% (zone: %v, thresholds %.1f%%/%.1f%%)\n",
		rec.GPUUsage*100, rec.Zone, char.Thresholds.GPUCacheLow*100, char.Thresholds.GPUCacheHigh*100)
	fmt.Printf("recommendation:     %s\n", rec.Suggested)
	fmt.Printf("estimated speedup:  %.1f%%\n", rec.SpeedupPercent())
	if rec.EnergyAdvantage {
		fmt.Println("energy:             eliminating the copies also saves transfer energy")
	}
	fmt.Printf("rationale:          %s\n", rec.Rationale)

	// How robust is the verdict to profiler noise?
	classify, err := framework.ClassificationProfile(ctx, s, w)
	fatalIf(err)
	currentProf := classify
	if *current != "sc" {
		m, err := comm.ByName(*current)
		fatalIf(err)
		currentProf, err = framework.CurrentProfile(ctx, s, w, m)
		fatalIf(err)
	}
	st, err := framework.DecisionStability(char, classify, currentProf, *current, 0.10)
	fatalIf(err)
	fmt.Printf("stability:          %.0f%% of ±10%%-perturbed profiles agree", st.Agreement*100)
	if len(st.Flips) > 0 {
		fmt.Printf(" (flips to %v)", st.Flips)
	}
	fmt.Println()

	if *verify {
		fmt.Println()
		fmt.Println("measured ranking (brute force):")
		exp, err := eng.Explore(ctx, cfg, w, nil)
		fatalIf(err)
		for i, cand := range exp.Ranked {
			fmt.Printf("  %d. %-3s %v\n", i+1, cand.Model, cand.Total.Duration())
		}
		regret, ok, err := exp.Validate(rec, 0.10)
		fatalIf(err)
		fmt.Printf("recommendation regret: %.2fx (within 10%%: %v)\n", regret, ok)
	}

	if *heatOut != "" {
		fmt.Println()
		exp, err := eng.ExploreHeat(ctx, cfg, w, comm.AllModels())
		fatalIf(err)
		art := framework.HeatArtifact{Entries: framework.HeatEntriesFromExploration(exp)}
		emitHeatCounters(tracer, art.Entries)
		fatalIf(writeHeatArtifact(*heatOut, art))
	}

	writeTrace(tracer, *traceOut)
}

// writeTrace exports the run's span tree as a Chrome trace_event file.
func writeTrace(tracer *telemetry.Tracer, path string) {
	if tracer == nil || path == "" {
		return
	}
	f, err := os.Create(path)
	fatalIf(err)
	err = tracer.WriteChromeTrace(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	fatalIf(err)
	fmt.Printf("\ntrace written to %s (%d spans) — open in chrome://tracing or ui.perfetto.dev\n",
		path, tracer.Len())
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "advisor:", err)
		os.Exit(1)
	}
}
