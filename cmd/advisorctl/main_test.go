package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"

	"igpucomm/internal/advisord"
	"igpucomm/internal/apps/catalog"
	"igpucomm/internal/engine"
	"igpucomm/internal/fleet"
	"igpucomm/internal/framework"
	"igpucomm/internal/microbench"
	"igpucomm/internal/perfmodel"
	"igpucomm/internal/units"
)

// shardHarness is one live advisord shard: engine, fleet state, and its data
// and admin listeners.
type shardHarness struct {
	id    string
	st    *fleet.State
	eng   *engine.Engine
	data  *httptest.Server
	admin *httptest.Server
}

// startShard boots one shard with a single-member placeholder membership;
// tests push the real membership through `advisorctl rebalance`, exactly as
// an operator would.
func startShard(t *testing.T, id string) *shardHarness {
	t.Helper()
	st, err := fleet.NewState(id, []fleet.Shard{{ID: id, URL: "http://placeholder.invalid"}}, 64)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{Workers: 1, KeyRole: st.KeyRole})
	srv := advisord.New(eng, advisord.Options{
		Params: microbench.TestParams(),
		Scale:  catalog.Quick,
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
		Fleet:  st,
	})
	h := &shardHarness{id: id, st: st, eng: eng}
	h.data = httptest.NewServer(srv.Handler())
	t.Cleanup(h.data.Close)
	h.admin = httptest.NewServer(srv.AdminHandler())
	t.Cleanup(h.admin.Close)
	return h
}

// seedEntries installs n synthetic characterizations under content-hash keys.
func seedEntries(t *testing.T, eng *engine.Engine, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		sum := sha256.Sum256([]byte(fmt.Sprintf("advisorctl-%d", i)))
		eng.CachePut(hex.EncodeToString(sum[:]), framework.Characterization{
			Platform:            fmt.Sprintf("board-%d", i),
			Thresholds:          perfmodel.Thresholds{CPUCache: 0.10, GPUCacheLow: 0.10, GPUCacheHigh: 0.30},
			PeakGPUThroughput:   100 * units.GBps,
			PinnedGPUThroughput: 10 * units.GBps,
			ZCSCMaxSpeedup:      10,
			SCZCMaxSpeedup:      2.5,
		})
	}
}

// runCtl drives the CLI entry point and captures its output.
func runCtl(args ...string) (code int, stdout, stderr string) {
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestAdvisorctlAgainstLiveFleet(t *testing.T) {
	a := startShard(t, "shard-a")
	b := startShard(t, "shard-b")
	seedEntries(t, a.eng, 32)
	fleetList := a.admin.URL + "," + b.admin.URL

	// status: one row per replica, both reachable.
	code, out, errOut := runCtl("-fleet", fleetList, "status")
	if code != 0 {
		t.Fatalf("status exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "shard-a") || !strings.Contains(out, "shard-b") {
		t.Fatalf("status output missing shards:\n%s", out)
	}

	// rebalance: push the real two-shard membership to both replicas and
	// warm-pull — shard-b should receive the entries it now owns.
	peers := "shard-a=" + a.data.URL + ",shard-b=" + b.data.URL
	code, out, errOut = runCtl("-fleet", fleetList, "rebalance", "-peers", peers, "-pull")
	if code != 0 {
		t.Fatalf("rebalance exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "VERSION") {
		t.Fatalf("rebalance output:\n%s", out)
	}
	if a.st.Version() != 2 || b.st.Version() != 2 {
		t.Fatalf("versions after rebalance: a=%d b=%d", a.st.Version(), b.st.Version())
	}
	bOwned := 0
	for key := range a.eng.CacheExport() {
		if b.st.Owns(key) {
			bOwned++
		}
	}
	if bOwned == 0 {
		t.Skip("hash placed every seeded key on shard-a; nothing to hand off")
	}
	if got := len(b.eng.CacheExport()); got != bOwned {
		t.Fatalf("shard-b pulled %d entries, owns %d", got, bOwned)
	}

	// ring: reports the pushed topology.
	code, out, errOut = runCtl("-fleet", fleetList, "ring")
	if code != 0 {
		t.Fatalf("ring exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "topology version 2") || !strings.Contains(out, "shard-b") {
		t.Fatalf("ring output:\n%s", out)
	}

	// drain/undrain: locates shard-b by identity and flips its flag.
	if code, _, errOut = runCtl("-fleet", fleetList, "drain", "shard-b"); code != 0 {
		t.Fatalf("drain exit %d, stderr: %s", code, errOut)
	}
	if !b.st.Draining() || a.st.Draining() {
		t.Fatalf("drain flags: a=%t b=%t", a.st.Draining(), b.st.Draining())
	}
	if code, _, errOut = runCtl("-fleet", fleetList, "undrain", "shard-b"); code != 0 {
		t.Fatalf("undrain exit %d, stderr: %s", code, errOut)
	}
	if b.st.Draining() {
		t.Fatal("shard-b still draining after undrain")
	}

	// Unknown shard: command fails and names the replicas it saw.
	code, _, errOut = runCtl("-fleet", fleetList, "drain", "shard-z")
	if code != 1 || !strings.Contains(errOut, "shard-z") {
		t.Fatalf("drain of unknown shard: exit %d, stderr: %s", code, errOut)
	}
}

func TestAdvisorctlStatusCountsDeadReplica(t *testing.T) {
	a := startShard(t, "shard-a")
	dead := httptest.NewServer(nil)
	deadURL := dead.URL
	dead.Close()
	code, out, errOut := runCtl("-fleet", a.admin.URL+","+deadURL, "status")
	if code != 1 {
		t.Fatalf("status with dead replica: exit %d", code)
	}
	if !strings.Contains(out, "shard-a") {
		t.Fatalf("live replica missing from output:\n%s", out)
	}
	if !strings.Contains(errOut, deadURL) {
		t.Fatalf("dead replica not reported:\n%s", errOut)
	}
}

func TestAdvisorctlUsageErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"no endpoints", []string{"status"}},
		{"no command", []string{"-fleet", "http://h:1"}},
		{"unknown command", []string{"-fleet", "http://h:1", "explode"}},
		{"drain without shard", []string{"-fleet", "http://h:1", "drain"}},
		{"rebalance without effect", []string{"-fleet", "http://h:1", "rebalance"}},
		{"rebalance bad peers", []string{"-fleet", "http://h:1", "rebalance", "-peers", "nonsense"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if code, _, _ := runCtl(tc.args...); code != 2 {
				t.Errorf("args %v: exit %d, want 2", tc.args, code)
			}
		})
	}
}

func TestSplitEndpoints(t *testing.T) {
	got := splitEndpoints(" http://h1:8125/ ,, http://h2:8125 ")
	if len(got) != 2 || got[0] != "http://h1:8125" || got[1] != "http://h2:8125" {
		t.Errorf("splitEndpoints = %v", got)
	}
	if splitEndpoints("") != nil {
		t.Error("empty spec should yield no endpoints")
	}
}
