// Command advisorctl is the operator CLI for a sharded advisord fleet. It
// speaks the admin API each replica serves on -admin-addr (see
// internal/advisord.AdminHandler) and knows the fleet only by that list of
// admin endpoints — no service discovery, no shared state.
//
// Commands:
//
//	status                 one row per replica: version, drain flag, cache, handoff counters
//	ring                   ring topology and each shard's share of the key space
//	drain <shard>          set the shard's drain flag (locates it by querying each replica)
//	undrain <shard>        clear the shard's drain flag
//	rebalance              push a membership list to every replica and/or trigger warm pulls
//
// Usage:
//
//	advisorctl -fleet http://h1:8125,http://h2:8125 status
//	advisorctl -fleet http://h1:8125,http://h2:8125 ring
//	advisorctl -fleet http://h1:8125,http://h2:8125 drain shard-b
//	advisorctl -fleet http://h1:8125,http://h2:8125,http://h3:8125 rebalance \
//	    -peers "a=http://h1:8025,b=http://h2:8025,c=http://h3:8025" -pull
//
// The fleet list is read from -fleet or, when the flag is empty, from the
// ADVISORCTL_FLEET environment variable. Exit status 1 when any replica in
// the fleet could not be reached or refused the command; 2 on usage errors.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"igpucomm/internal/buildinfo"
	"igpucomm/internal/engine"
	"igpucomm/internal/fleet"
)

// statusDoc mirrors advisord's /admin/v1/status payload.
type statusDoc struct {
	Fleet       fleet.Stats                     `json:"fleet"`
	Cache       engine.MemoStats                `json:"cache"`
	CacheByRole map[string]engine.MemoRoleStats `json:"cache_by_role"`
}

// ringDoc mirrors advisord's /admin/v1/ring payload.
type ringDoc struct {
	Topology fleet.Topology     `json:"topology"`
	Shares   map[string]float64 `json:"shares"`
}

// rebalanceReply mirrors advisord's /admin/v1/rebalance response.
type rebalanceReply struct {
	Version    int64    `json:"version"`
	Pulled     int      `json:"pulled"`
	PeerErrors []string `json:"peer_errors"`
}

// ctl carries one invocation's fleet endpoints and I/O.
type ctl struct {
	endpoints []string // admin base URLs, e.g. http://h1:8125
	hc        *http.Client
	out       io.Writer
	errw      io.Writer
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process exit, so tests drive it directly.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("advisorctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fleetFlag := fs.String("fleet", "", "comma-separated admin base URLs (also read from ADVISORCTL_FLEET)")
	timeout := fs.Duration("timeout", 10*time.Second, "overall deadline for the command")
	version := fs.Bool("version", false, "print build information and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: advisorctl -fleet <url,...> <status|ring|drain|undrain|rebalance> [args]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.Get())
		return 0
	}
	spec := *fleetFlag
	if spec == "" {
		spec = os.Getenv("ADVISORCTL_FLEET")
	}
	endpoints := splitEndpoints(spec)
	if len(endpoints) == 0 {
		fmt.Fprintln(stderr, "advisorctl: no fleet endpoints; pass -fleet or set ADVISORCTL_FLEET")
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	c := &ctl{endpoints: endpoints, hc: http.DefaultClient, out: stdout, errw: stderr}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	cmd, rest := fs.Arg(0), fs.Args()[1:]
	switch cmd {
	case "status":
		return c.status(ctx)
	case "ring":
		return c.ring(ctx)
	case "drain", "undrain":
		if len(rest) != 1 {
			fmt.Fprintf(stderr, "advisorctl: %s takes exactly one shard ID\n", cmd)
			return 2
		}
		return c.drain(ctx, rest[0], cmd == "drain")
	case "rebalance":
		return c.rebalance(ctx, rest, stderr)
	default:
		fmt.Fprintf(stderr, "advisorctl: unknown command %q\n", cmd)
		fs.Usage()
		return 2
	}
}

// splitEndpoints turns "http://h1:8125, http://h2:8125" into a URL list.
func splitEndpoints(spec string) []string {
	var out []string
	for _, p := range strings.Split(spec, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, strings.TrimRight(p, "/"))
		}
	}
	return out
}

// getJSON GETs one admin endpoint path into v.
func (c *ctl) getJSON(ctx context.Context, base, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", path, readError(resp))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// postJSON POSTs body to one admin endpoint path, decoding into v when
// non-nil.
func (c *ctl) postJSON(ctx context.Context, base, path string, body, v any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", path, readError(resp))
	}
	if v == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// readError extracts the server's {"error": ...} message for a human.
func readError(resp *http.Response) string {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return fmt.Sprintf("%d: %s", resp.StatusCode, e.Error)
	}
	return fmt.Sprintf("%d: %s", resp.StatusCode, bytes.TrimSpace(data))
}

// status prints one row per replica; unreachable replicas get an error row
// and fail the command.
func (c *ctl) status(ctx context.Context) int {
	tw := tabwriter.NewWriter(c.out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SHARD\tVERSION\tDRAINING\tENTRIES\tHIT-RATE\tREROUTES\tEXPORTED\tIMPORTED\tENDPOINT")
	failed := 0
	for _, ep := range c.endpoints {
		var st statusDoc
		if err := c.getJSON(ctx, ep, "/admin/v1/status", &st); err != nil {
			fmt.Fprintf(c.errw, "advisorctl: %s: %v\n", ep, err)
			failed++
			continue
		}
		total := st.Cache.Hits + st.Cache.Misses
		hitRate := 0.0
		if total > 0 {
			hitRate = float64(st.Cache.Hits) / float64(total)
		}
		fmt.Fprintf(tw, "%s\t%d\t%t\t%d\t%.2f\t%d\t%d\t%d\t%s\n",
			st.Fleet.Self, st.Fleet.Version, st.Fleet.Draining, st.Cache.Entries,
			hitRate, st.Fleet.ReroutesReceived, st.Fleet.HandoffExported,
			st.Fleet.HandoffImported, ep)
	}
	tw.Flush()
	if failed > 0 {
		return 1
	}
	return 0
}

// ring prints the topology and key-space shares from the first replica that
// answers — every replica at a given version reports the same ring.
func (c *ctl) ring(ctx context.Context) int {
	var doc ringDoc
	var errs []error
	got := false
	for _, ep := range c.endpoints {
		if err := c.getJSON(ctx, ep, "/admin/v1/ring", &doc); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", ep, err))
			continue
		}
		got = true
		break
	}
	if !got {
		fmt.Fprintf(c.errw, "advisorctl: every replica refused ring: %v\n", errors.Join(errs...))
		return 1
	}
	fmt.Fprintf(c.out, "topology version %d, %d shards, %d vnodes/shard (reported by %s)\n",
		doc.Topology.Version, len(doc.Topology.Shards), doc.Topology.VNodes, doc.Topology.Self)
	tw := tabwriter.NewWriter(c.out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SHARD\tSHARE\tSTATE\tURL")
	shards := append([]fleet.Shard(nil), doc.Topology.Shards...)
	sort.Slice(shards, func(i, j int) bool { return shards[i].ID < shards[j].ID })
	for _, sh := range shards {
		state := sh.State
		if state == "" {
			state = fleet.StateUnknown
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%s\t%s\n", sh.ID, doc.Shares[sh.ID], state, sh.URL)
	}
	tw.Flush()
	return 0
}

// drain locates the shard by asking each replica who it is, then sets or
// clears its drain flag.
func (c *ctl) drain(ctx context.Context, shard string, drain bool) int {
	var found []string
	for _, ep := range c.endpoints {
		var st statusDoc
		if err := c.getJSON(ctx, ep, "/admin/v1/status", &st); err != nil {
			fmt.Fprintf(c.errw, "advisorctl: %s: %v\n", ep, err)
			continue
		}
		found = append(found, st.Fleet.Self)
		if st.Fleet.Self != shard {
			continue
		}
		body := map[string]any{"shard": shard, "drain": drain}
		if err := c.postJSON(ctx, ep, "/admin/v1/drain", body, nil); err != nil {
			fmt.Fprintf(c.errw, "advisorctl: %s: %v\n", ep, err)
			return 1
		}
		verb := "draining"
		if !drain {
			verb = "serving"
		}
		fmt.Fprintf(c.out, "shard %s now %s (via %s)\n", shard, verb, ep)
		return 0
	}
	fmt.Fprintf(c.errw, "advisorctl: no replica identifies as %q (saw: %s)\n",
		shard, strings.Join(found, ", "))
	return 1
}

// rebalance pushes a membership list to every replica (each bumps its
// topology version) and optionally triggers the warm pull that moves owned
// cache entries onto their new shards.
func (c *ctl) rebalance(ctx context.Context, args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("advisorctl rebalance", flag.ContinueOnError)
	fs.SetOutput(stderr)
	peersSpec := fs.String("peers", "", "new membership as comma-separated id=url pairs (empty: keep current)")
	pull := fs.Bool("pull", false, "after the membership update, each replica warm-pulls the entries it owns")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var peers []fleet.Shard
	if *peersSpec != "" {
		var err error
		if peers, err = parsePeers(*peersSpec); err != nil {
			fmt.Fprintf(stderr, "advisorctl: %v\n", err)
			return 2
		}
	}
	if *peersSpec == "" && !*pull {
		fmt.Fprintln(stderr, "advisorctl: rebalance needs -peers, -pull, or both")
		return 2
	}
	body := map[string]any{"pull": *pull}
	if len(peers) > 0 {
		body["peers"] = peers
	}
	tw := tabwriter.NewWriter(c.out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ENDPOINT\tVERSION\tPULLED\tPEER-ERRORS")
	failed := 0
	for _, ep := range c.endpoints {
		var rep rebalanceReply
		if err := c.postJSON(ctx, ep, "/admin/v1/rebalance", body, &rep); err != nil {
			fmt.Fprintf(c.errw, "advisorctl: %s: %v\n", ep, err)
			failed++
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\n", ep, rep.Version, rep.Pulled, len(rep.PeerErrors))
		for _, pe := range rep.PeerErrors {
			fmt.Fprintf(c.errw, "advisorctl: %s: peer error: %s\n", ep, pe)
		}
	}
	tw.Flush()
	if failed > 0 {
		return 1
	}
	return 0
}

// parsePeers reads "a=http://h1:8025,b=http://h2:8025" into shards.
func parsePeers(spec string) ([]fleet.Shard, error) {
	seen := make(map[string]bool)
	var shards []fleet.Shard
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		id, url = strings.TrimSpace(id), strings.TrimSpace(url)
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("-peers entry %q is not id=url", part)
		}
		if seen[id] {
			return nil, fmt.Errorf("-peers lists shard %q twice", id)
		}
		seen[id] = true
		shards = append(shards, fleet.Shard{ID: id, URL: url})
	}
	if len(shards) == 0 {
		return nil, errors.New("-peers must list the membership as id=url pairs")
	}
	return shards, nil
}
