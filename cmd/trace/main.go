// Command trace exports a kernel's coalesced memory-transaction trace as CSV
// — one row per transaction with its path (cached / pinned / pinned-wc) —
// for external analysis or plotting. The kernels come from the case-study
// workloads; the communication model decides which path the transactions
// take.
//
// Usage:
//
//	trace -device jetson-tx2 -app shwfs -model zc -launch 0 > trace.csv
//	trace -device jetson-agx-xavier -app orbslam -model sc -launch 3 -o kernel3.csv
package main

import (
	"flag"
	"fmt"
	"igpucomm/internal/buildinfo"
	"os"

	"igpucomm/internal/apps/lanedet"
	"igpucomm/internal/apps/orbslam"
	"igpucomm/internal/apps/shwfs"
	"igpucomm/internal/comm"
	"igpucomm/internal/devices"
	"igpucomm/internal/mmu"
)

func main() {
	device := flag.String("device", devices.TX2Name, "platform name")
	app := flag.String("app", "shwfs", "application: shwfs, orbslam, lanedet")
	model := flag.String("model", "sc", "buffer placement to trace under: sc or zc")
	launch := flag.Int("launch", 0, "which kernel launch to trace")
	out := flag.String("o", "", "output file (default stdout)")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Get())
		return
	}

	var (
		w   comm.Workload
		err error
	)
	switch *app {
	case "shwfs":
		w, err = shwfs.Workload(shwfs.DefaultWorkloadParams())
	case "orbslam":
		w, err = orbslam.Workload(orbslam.DefaultWorkloadParams())
	case "lanedet":
		w, err = lanedet.Workload(lanedet.DefaultWorkloadParams())
	default:
		err = fmt.Errorf("unknown app %q", *app)
	}
	fatalIf(err)
	if *launch < 0 || *launch >= w.LaunchCount() {
		fatalIf(fmt.Errorf("launch %d out of range [0, %d)", *launch, w.LaunchCount()))
	}

	s, err := devices.NewSoC(*device)
	fatalIf(err)

	// Place the buffers the way the chosen model would, then build the
	// requested launch against that layout.
	lay := comm.Layout{}
	all := append(append(append([]comm.BufferSpec{}, w.In...), w.Out...), w.Scratch...)
	for _, spec := range all {
		var (
			b  mmu.Buffer
			ae error
		)
		switch *model {
		case "zc":
			b, ae = s.AllocPinned("trace/"+spec.Name, spec.Size)
		case "sc":
			b, ae = s.AllocDevice("trace/"+spec.Name, spec.Size)
		default:
			ae = fmt.Errorf("unknown model %q (have sc, zc)", *model)
		}
		fatalIf(ae)
		lay[spec.Name] = b
	}

	kernel := w.MakeKernel(lay, *launch)
	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		fatalIf(err)
		defer f.Close()
		dst = f
	}
	fmt.Fprintf(os.Stderr, "tracing %s launch %d (%s) on %s under %s placement\n",
		*app, *launch, kernel.Name, *device, *model)
	fatalIf(s.GPU.TraceTransactions(kernel, dst))
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
}
