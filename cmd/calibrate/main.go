// Command calibrate fits a platform's bandwidth parameters to measured
// Table-I-style numbers: give it a base catalog entry and the cached (SC)
// and pinned-path (ZC) GPU throughputs you measured on your board, and it
// bisects the simulator's parameters until the first micro-benchmark
// reproduces them.
//
// Usage:
//
//	calibrate -base jetson-tx2 -sc 97.34 -zc 1.28
//	calibrate -base jetson-agx-xavier -sc 214.64 -zc 32.29 -tol 0.05
package main

import (
	"context"
	"flag"
	"fmt"
	"igpucomm/internal/buildinfo"
	"os"

	"igpucomm/internal/calibrate"
	"igpucomm/internal/devices"
	"igpucomm/internal/engine"
	"igpucomm/internal/microbench"
	"igpucomm/internal/soc"
	"igpucomm/internal/units"
)

func main() {
	base := flag.String("base", devices.TX2Name, "base platform to refit")
	sc := flag.Float64("sc", 0, "measured cached GPU throughput, GB/s (0 = skip)")
	zc := flag.Float64("zc", 0, "measured pinned-path GPU throughput, GB/s (0 = skip)")
	tol := flag.Float64("tol", 0.05, "relative tolerance")
	quick := flag.Bool("quick", false, "reduced micro-benchmark scale")
	workers := flag.Int("workers", 0, "simulation parallelism (0 = GOMAXPROCS)")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Get())
		return
	}

	cfg, err := devices.ByName(*base)
	fatalIf(err)
	params := microbench.DefaultParams()
	if *quick {
		params = microbench.TestParams()
	}
	if *sc <= 0 && *zc <= 0 {
		fatalIf(fmt.Errorf("nothing to fit: pass -sc and/or -zc"))
	}

	// The bisection re-measures MB1 at every probe; routing it through the
	// engine parallelizes the three model rows and memoizes repeated probes
	// of the same candidate config (the final verification pass, for one,
	// re-measures the fitted config for free).
	eng := engine.New(engine.Options{Workers: *workers})
	ctx := context.Background()
	runMB1 := calibrate.MB1Runner(func(ctx context.Context, cfg soc.Config, p microbench.Params) (microbench.MB1Result, error) {
		return eng.MB1(ctx, cfg, p)
	})

	if *sc > 0 {
		fmt.Printf("fitting GPU LLC bandwidth to SC throughput %.2f GB/s ...\n", *sc)
		cfg, err = calibrate.TuneLLCBandwidthWith(ctx, runMB1, cfg, params, units.BytesPerSecond(*sc)*units.GBps, *tol)
		fatalIf(err)
		fmt.Printf("  -> LLCBandwidth = %.2f GB/s\n", cfg.GPU.LLCBandwidth.GB())
	}
	if *zc > 0 {
		fmt.Printf("fitting zero-copy path to ZC throughput %.2f GB/s ...\n", *zc)
		cfg, err = calibrate.TunePinnedBandwidthWith(ctx, runMB1, cfg, params, units.BytesPerSecond(*zc)*units.GBps, *tol)
		fatalIf(err)
		if cfg.IOCoherent {
			fmt.Printf("  -> IOBandwidth = %.2f GB/s\n", cfg.IOBandwidth.GB())
		} else {
			fmt.Printf("  -> PinnedBandwidth = %.2f GB/s\n", cfg.PinnedBandwidth.GB())
		}
	}

	err = calibrate.VerifyWith(ctx, runMB1, cfg, params, calibrate.Target{
		SCThroughput: units.BytesPerSecond(*sc) * units.GBps,
		ZCThroughput: units.BytesPerSecond(*zc) * units.GBps,
		Tolerance:    *tol,
	})
	fatalIf(err)
	fmt.Println("verification passed: the fitted config reproduces the measurements")
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
}
