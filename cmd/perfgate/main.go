// Command perfgate is the performance-regression gate: it runs the declared
// perfbench suite into a schema-versioned BENCH_<timestamp>.json artifact,
// and compares two such artifacts under a noise-aware threshold (a scenario
// regresses only when its median slowdown exceeds both a relative percentage
// and an absolute floor).
//
// Usage:
//
//	perfgate -run -quick                       # run the quick suite, write BENCH_<ts>.json
//	perfgate -run -iterations 10 -out my.json  # full scale, explicit artifact path
//	perfgate -update-baseline                  # run the quick suite into bench/baseline.json
//	perfgate -baseline bench/baseline.json -candidate BENCH_x.json
//	perfgate -baseline A -candidate B -rel 5 -abs-floor 1ms
//	perfgate -baseline A -candidate B -warn-only
//
// Beyond the baseline comparison, every run or candidate artifact is checked
// against the declared cross-scenario Relations (perfbench.DefaultRelations):
// ordering invariants like "sweep/engine beats sweep/serial" and the batch
// core's absolute 5x-vs-seed cap on sweep/engine-batch.
//
// Exit status: 0 on success (or regressions under -warn-only), 1 when the
// comparison finds a regression beyond the noise gate or a relation is
// violated, 2 on usage or I/O errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"igpucomm/internal/buildinfo"
	"igpucomm/internal/perfbench"
)

// defaultBaseline is the committed trajectory anchor -update-baseline
// refreshes and CI compares against.
const defaultBaseline = "bench/baseline.json"

func main() {
	run := flag.Bool("run", false, "run the benchmark suite and write an artifact")
	quick := flag.Bool("quick", false, "reduced micro-benchmark and workload scale")
	iterations := flag.Int("iterations", 5, "timed iterations per scenario")
	warmup := flag.Int("warmup", 1, "untimed warmup rounds before measurement")
	workers := flag.Int("workers", 0, "engine simulation parallelism (0 = GOMAXPROCS)")
	out := flag.String("out", "", "artifact path for -run (default BENCH_<timestamp>.json)")
	baseline := flag.String("baseline", "", "baseline artifact for comparison")
	candidate := flag.String("candidate", "", "candidate artifact for comparison")
	rel := flag.Float64("rel", perfbench.DefaultThresholds().RelPct, "relative regression threshold, percent")
	absFloor := flag.Duration("abs-floor", perfbench.DefaultThresholds().AbsFloor, "absolute regression floor")
	warnOnly := flag.Bool("warn-only", false, "report regressions but exit 0")
	updateBaseline := flag.Bool("update-baseline", false, "run the quick suite and refresh "+defaultBaseline)
	verbose := flag.Bool("v", false, "print per-round progress while running")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Get())
		return
	}

	switch {
	case *updateBaseline:
		// The committed baseline is always quick-scale: it must be cheap
		// enough for CI and for every contributor to regenerate.
		os.Exit(runSuite(true, *iterations, *warmup, *workers, defaultBaseline, *verbose, *warnOnly))
	case *run:
		path := *out
		if path == "" {
			path = perfbench.ArtifactName(time.Now())
		}
		os.Exit(runSuite(*quick, *iterations, *warmup, *workers, path, *verbose, *warnOnly))
	case *baseline != "" || *candidate != "":
		if *baseline == "" || *candidate == "" {
			fatal(fmt.Errorf("comparison needs both -baseline and -candidate"))
		}
		os.Exit(compare(*baseline, *candidate, perfbench.Thresholds{
			RelPct:   *rel,
			AbsFloor: *absFloor,
		}, *warnOnly))
	default:
		fmt.Fprintln(os.Stderr, "perfgate: nothing to do; pass -run, -update-baseline, or -baseline/-candidate")
		flag.Usage()
		os.Exit(2)
	}
}

func runSuite(quick bool, iterations, warmup, workers int, path string, verbose, warnOnly bool) int {
	suite, err := perfbench.DefaultSuite(perfbench.SuiteOptions{Quick: quick, Workers: workers})
	if err != nil {
		fatal(err)
	}
	opts := perfbench.RunOptions{
		Iterations: iterations,
		Warmup:     warmup,
		Quick:      quick,
	}
	if verbose {
		opts.Progress = os.Stderr
	}
	artifact, err := perfbench.Run(context.Background(), suite, opts)
	if err != nil {
		fatal(err)
	}
	if err := artifact.WriteFile(path); err != nil {
		fatal(err)
	}
	fmt.Print(perfbench.FormatTable(artifact))
	results, violations := perfbench.CheckRelations(artifact, perfbench.DefaultRelations())
	fmt.Print(perfbench.FormatRelations(results, violations))
	fmt.Printf("wrote %s\n", path)
	if violations > 0 && !warnOnly {
		return 1
	}
	return 0
}

func compare(basePath, candPath string, th perfbench.Thresholds, warnOnly bool) int {
	base, err := perfbench.ReadArtifactFile(basePath)
	if err != nil {
		fatal(fmt.Errorf("baseline %s: %w", basePath, err))
	}
	cand, err := perfbench.ReadArtifactFile(candPath)
	if err != nil {
		fatal(fmt.Errorf("candidate %s: %w", candPath, err))
	}
	cmp, err := perfbench.Compare(base, cand, th)
	if err != nil {
		fatal(err)
	}
	fmt.Print(perfbench.FormatComparison(cmp))
	results, violations := perfbench.CheckRelations(cand, perfbench.DefaultRelations())
	fmt.Print(perfbench.FormatRelations(results, violations))
	if (cmp.Regressions > 0 || violations > 0) && !warnOnly {
		return 1
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "perfgate: %v\n", err)
	os.Exit(2)
}
