module igpucomm

go 1.22
