# Developer entry points; `make ci` is exactly what .github/workflows/ci.yml
# runs.

GO ?= go

.PHONY: all build test race fmt vet lint hazardcheck ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# The repo's own Go-source gate (internal/analysis).
lint:
	$(GO) run ./cmd/hazardcheck -lint ./...

# Verify every device × app × model schedule, placement and trace.
hazardcheck:
	$(GO) run ./cmd/hazardcheck

ci: fmt vet lint build race hazardcheck
