# Developer entry points; `make ci` is exactly what .github/workflows/ci.yml
# runs.

GO ?= go

.PHONY: all build test race fmt vet lint lint-sarif lint-baseline lint-docs docs-links hazardcheck cover fuzz bench perfgate perf-smoke baseline trace chaos fleet dst ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# The repo's own Go-source gate: go vet plus the igpulint type-aware
# analyzer suite (internal/analysis), checked against lint/baseline.json.
# Drift fails in both directions — new findings and stale baseline entries.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/igpulint ./...

# SARIF export of the current findings (what the CI lint job uploads).
lint-sarif:
	$(GO) run ./cmd/igpulint -format sarif ./... > igpulint.sarif

# Refresh lint/baseline.json from the current findings. Every generated
# entry carries a placeholder "why" the drift check rejects until a human
# justifies or fixes it.
lint-baseline:
	$(GO) run ./cmd/igpulint -update-baseline

# Fails on exported identifiers without doc comments in the contract
# packages (internal/engine, internal/perfmodel, internal/telemetry,
# internal/perfbench).
lint-docs:
	$(GO) run ./cmd/hazardcheck -lint-docs

# Fails on relative markdown links that do not resolve, across
# README/DESIGN/EXPERIMENTS/ROADMAP and docs/.
docs-links:
	$(GO) run ./cmd/hazardcheck -links

# Verify every device × app × model schedule, placement and trace.
hazardcheck:
	$(GO) run ./cmd/hazardcheck

# Combined statement coverage of the execution engine and the framework it
# must stay byte-equivalent to; fails under 80%.
COVER_MIN ?= 80.0
cover:
	$(GO) test -coverprofile=coverage.out -coverpkg=./internal/engine,./internal/framework ./internal/engine ./internal/framework
	@total="$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}')"; \
	echo "engine+framework coverage: $$total% (minimum $(COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { exit (t+0 >= min+0) ? 0 : 1 }' || \
		{ echo "coverage below $(COVER_MIN)%"; exit 1; }

# Short fuzz pass over the externally-facing parsers: the hazard-trace CSV
# reader and the NDJSON warm-handoff export reader (a malicious or buggy
# peer must quarantine, never panic its puller).
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/hazard -run '^$$' -fuzz FuzzParseTrace -fuzztime $(FUZZTIME)
	$(GO) test ./internal/fleet -run '^$$' -fuzz FuzzReadExport -fuzztime $(FUZZTIME)

# One full iteration of every engine benchmark (the sweep pair is the
# headline: serial vs memoized-parallel advisory sweep).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/engine

# One quick-scale perfgate run: writes BENCH_<timestamp>.json and prints the
# human table (see docs/BENCHMARKS.md for the methodology).
perfgate:
	$(GO) run ./cmd/perfgate -run -quick

# The CI perf job: run the quick suite, then compare against the committed
# baseline in warn-only mode (absolute medians are host-dependent, so a
# shared-runner comparison informs but never fails the build).
perf-smoke:
	$(GO) run ./cmd/perfgate -run -quick -out BENCH_ci.json
	$(GO) run ./cmd/perfgate -baseline bench/baseline.json -candidate BENCH_ci.json -warn-only

# Refresh the committed quick-scale baseline (run on a quiet machine).
baseline:
	$(GO) run ./cmd/perfgate -update-baseline

# Observability smoke: the quick-scale 45-combo sweep (3 devices x 3 apps x
# 5 models) recorded as a Chrome trace_event file — open trace.json in
# chrome://tracing or https://ui.perfetto.dev.
trace:
	$(GO) run ./cmd/advisor -quick -sweep -trace trace.json

# Chaos suite: the 45-combo sweep through the retrying client against an
# advisord with fault injection active, under the race detector. Schedules
# carry fixed seeds (internal/chaos), so runs are reproducible.
chaos:
	$(GO) test -race ./internal/chaos/

# Fleet storm harness: a 3-shard advisord fleet under closed-loop load while
# a cold shard joins (warm handoff) and another is killed mid-run, plus the
# same load shape under the chaos suite's flaky-engine schedule — all under
# the race detector. Runs the short smoke profile by default (correctness
# under churn lives in `make dst` now); FLEET_STORM=full restores the long
# window. FLEET_SUMMARY receives the latency artifact CI uploads.
FLEET_SUMMARY ?= fleet-summary.json
fleet:
	FLEET_SUMMARY=$(FLEET_SUMMARY) $(GO) test -race -run 'TestFleetStorm' -v ./internal/fleet/

# Deterministic simulation suite: DST_SEEDS seeded fleet scenarios (crash,
# restart, partition, link faults, drain, warm handoff) in virtual time,
# invariant-checked after every step, under the race detector. A failing
# seed is shrunk and its repro artifact written to DST_ARTIFACT; replay it
# with the `go test ./internal/dst -run TestDSTSeedSweep -dst.seed=N`
# command the artifact carries.
DST_SEEDS ?= 200
DST_ARTIFACT ?= dst-repro.json
dst:
	DST_ARTIFACT=$(DST_ARTIFACT) $(GO) test -race -count=1 ./internal/dst -dst.seeds=$(DST_SEEDS)

ci: fmt vet lint lint-docs docs-links build race cover fuzz hazardcheck trace chaos fleet dst perf-smoke
