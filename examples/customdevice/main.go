// Example: bringing up a NEW board. Suppose you have a hypothetical
// next-generation module ("orin-class"): 12 GPU SMs, LPDDR5, hardware I/O
// coherence. You measured two numbers on the bench — cached GPU throughput
// and pinned-path throughput — and want the framework's advice for your
// application on it.
//
// The flow is the same one used to build the Jetson catalogs:
//  1. start from the closest catalog entry and edit the geometry,
//  2. calibrate the bandwidth parameters against your measurements,
//  3. characterize and advise.
package main

import (
	"context"
	"fmt"
	"log"

	"igpucomm"
	"igpucomm/internal/apps/shwfs"
	"igpucomm/internal/calibrate"
	"igpucomm/internal/devices"
	"igpucomm/internal/framework"
	"igpucomm/internal/microbench"
	"igpucomm/internal/soc"
	"igpucomm/internal/units"
)

func main() {
	ctx := context.Background()

	// 1. Geometry: start from Xavier, stretch to the new module's specs.
	cfg := devices.Xavier()
	cfg.Name = "orin-class"
	cfg.GPU.Name = "orin-class/gpu"
	cfg.GPU.SMs = 12
	cfg.GPU.Freq = 1.6 * units.GHz
	cfg.CPU.Freq = 2.4 * units.GHz
	cfg.DRAM.Bandwidth = 180 * units.GBps
	cfg.GPU.DRAMBandwidth = 150 * units.GBps
	cfg.CopyBandwidth = 45 * units.GBps

	// 2. Calibrate the two bandwidths you measured on the bench. The fit
	// runs the first micro-benchmark repeatedly — expect ~20s.
	fmt.Println("calibrating (runs the first micro-benchmark repeatedly)...")
	params := microbench.DefaultParams()
	fitted, err := calibrate.TuneLLCBandwidth(ctx, cfg, params, 310*units.GBps, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fitted, err = calibrate.TunePinnedBandwidth(ctx, fitted, params, 40*units.GBps, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	if err := calibrate.Verify(ctx, fitted, params, calibrate.Target{
		SCThroughput: 310 * units.GBps,
		ZCThroughput: 40 * units.GBps,
		Tolerance:    0.06,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated %s: LLC %.0f GB/s, coherent path %.0f GB/s\n\n",
		fitted.Name, fitted.GPU.LLCBandwidth.GB(), fitted.IOBandwidth.GB())

	// 3. Characterize and advise, exactly as for a catalog board.
	s := soc.New(fitted)
	char, err := framework.Characterize(ctx, s, params)
	if err != nil {
		log.Fatal(err)
	}
	w, err := shwfs.Workload(shwfs.DefaultWorkloadParams())
	if err != nil {
		log.Fatal(err)
	}
	rec, err := framework.AdviseWorkload(ctx, char, s, w, "sc")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SH-WFS on %s: use %q (estimated %+.0f%%)\n", fitted.Name, rec.Suggested, rec.SpeedupPercent())
	fmt.Println("rationale:", rec.Rationale)

	// Sanity: measure all three models.
	exp, err := igpucomm.Explore(s, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmeasured ranking:")
	for i, c := range exp.Ranked {
		fmt.Printf("  %d. %-3s %v\n", i+1, c.Model, c.Total.Duration())
	}
}
