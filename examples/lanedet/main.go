// Example: a lane-detection ADAS pipeline — the camera-streaming workload
// the paper's introduction motivates. Detects real lanes on a synthetic road
// scene, asks the framework which communication model each Jetson should
// use, and checks whether the 30 Hz camera loop is sustainable under it.
package main

import (
	"flag"
	"fmt"
	"log"

	"igpucomm"
	"igpucomm/internal/apps/lanedet"
	"igpucomm/internal/comm"
	"igpucomm/internal/microbench"
	"igpucomm/internal/stream"
)

func main() {
	quick := flag.Bool("quick", false, "reduced characterization scale")
	flag.Parse()

	// 1. Functional check: find the lanes in a rendered road scene.
	frame, truth := lanedet.RoadScene(320, 240, []float64{90, 230}, 0.08, 11)
	lanes, err := lanedet.Detect(lanedet.DefaultConfig(), frame, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("functional check: %d lanes detected (ground truth %d)\n", len(lanes), len(truth))
	for _, l := range lanes {
		fmt.Printf("  lane at x(y=120) = %.1f px, angle %.1f deg, %d votes\n",
			l.XAt(120), l.Theta*180/3.14159, l.Votes)
	}
	fmt.Println()

	// 2. Tuning + streaming feasibility per board.
	w, err := lanedet.Workload(lanedet.DefaultWorkloadParams())
	if err != nil {
		log.Fatal(err)
	}
	params := microbench.DefaultParams()
	if *quick {
		params = microbench.TestParams()
	}
	for _, board := range igpucomm.Platforms() {
		s, err := igpucomm.NewSoC(board)
		if err != nil {
			log.Fatal(err)
		}
		char, err := igpucomm.Characterize(s, params)
		if err != nil {
			log.Fatal(err)
		}
		rec, err := igpucomm.Advise(char, s, w, "sc")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s: suggests %q (est %+.0f%%, zone %v)\n",
			board, rec.Suggested, rec.SpeedupPercent(), rec.Zone)

		cfg := stream.Config{RateHz: 30, Frames: 128}
		stats, err := stream.Compare(s, w, comm.Models(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		for _, st := range stats {
			fmt.Printf("   %-3s service %8.1fµs  util %5.1f%%  sustainable %-5v  power %.2fW\n",
				st.Model, st.Service.Seconds()*1e6, st.Utilization*100, st.Sustainable, st.EnergyPerSecond)
		}
	}
}
