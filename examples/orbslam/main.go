// Example: tuning the ORB-SLAM front-end on TX2 and Xavier — the paper's
// §IV-C study, the cautionary tale of zero-copy: a GPU-cache-dependent
// kernel plus a pinned feature buffer the CPU streams over makes ZC
// catastrophic on a device without I/O coherence (paper Tables IV and V).
package main

import (
	"flag"
	"fmt"
	"log"

	"igpucomm"
	"igpucomm/internal/apps/orbslam"
	"igpucomm/internal/imgutil"
	"igpucomm/internal/microbench"
)

func main() {
	quick := flag.Bool("quick", false, "reduced characterization scale")
	flag.Parse()

	// 1. Functional check: detect and describe real features on a frame,
	// then match the frame against itself.
	scene := imgutil.TexturedScene(640, 480, 24, 7)
	feCfg := orbslam.FrontendConfig{
		Detector:    orbslam.DetectorConfig{Threshold: 20, Border: 16},
		Levels:      4,
		MaxPerLevel: 128,
	}
	feats, err := orbslam.ExtractFeatures(feCfg, scene)
	if err != nil {
		log.Fatal(err)
	}
	matches := orbslam.Match(feats, feats, 0)
	fmt.Printf("functional check: %d features extracted, %d/%d self-matches\n\n",
		len(feats), len(matches), len(feats))

	// 2. The tuning flow.
	w, err := orbslam.Workload(orbslam.DefaultWorkloadParams())
	if err != nil {
		log.Fatal(err)
	}
	params := microbench.DefaultParams()
	if *quick {
		params = microbench.TestParams()
	}

	for _, board := range []string{igpucomm.TX2Name, igpucomm.XavierName} {
		s, err := igpucomm.NewSoC(board)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s\n", board)
		char, err := igpucomm.Characterize(s, params)
		if err != nil {
			log.Fatal(err)
		}

		// The app ships with SC; what does the framework say about ZC?
		rec, err := igpucomm.Advise(char, s, w, "sc")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  profile: CPU usage %.2f%%, GPU usage %.1f%% (zone %v)\n",
			rec.CPUUsage*100, rec.GPUUsage*100, rec.Zone)
		fmt.Printf("  framework suggests %q (estimated %+.1f%%)\n", rec.Suggested, rec.SpeedupPercent())

		scRep, err := igpucomm.Run(s, w, igpucomm.StandardCopy)
		if err != nil {
			log.Fatal(err)
		}
		zcRep, err := igpucomm.Run(s, w, igpucomm.ZeroCopy)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  measured: SC %.2fms vs ZC %.2fms (%+.0f%%), kernels %.1fµs vs %.1fµs\n\n",
			scRep.Total.Seconds()*1e3, zcRep.Total.Seconds()*1e3,
			(scRep.Total.Seconds()/zcRep.Total.Seconds()-1)*100,
			scRep.KernelTimePer().Seconds()*1e6, zcRep.KernelTimePer().Seconds()*1e6)
	}
}
