// Example: using the §III-C zero-copy communication pattern as a library.
//
// A CPU producer and a GPU-consumer stand-in process the same image buffer
// concurrently, alternating over even/odd tiles phase by phase — no
// per-access synchronization, deterministic results. The analytic twin then
// prices the pattern on the simulated Xavier, showing the overlap gain the
// paper's third micro-benchmark measures.
package main

import (
	"fmt"
	"log"

	"igpucomm/internal/devices"
	"igpucomm/internal/tiling"
	"igpucomm/internal/units"
)

func main() {
	// A 1024x256 float32 image, tiled by the smaller of the CPU/GPU line
	// sizes (both 64B on the Jetson catalog -> 16-element tiles).
	xavier := devices.Xavier()
	geo, err := tiling.NewGeometry(1024, 256, 4,
		xavier.CPU.LLC.LineSize, xavier.GPU.LLC.LineSize)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("geometry: %dx%d tiles of %d bytes (B_size = min line size)\n",
		geo.TilesX(), geo.TilesY(), geo.TileBytes())
	fmt.Printf("structure fits Xavier's GPU LLC: %v\n\n", geo.Fits(xavier.GPU.LLC.Size))

	// Run the real concurrent pattern: the producer writes a gradient, the
	// consumer doubles whatever the producer wrote in the previous phase.
	data := make([]float32, geo.Width*geo.Height)
	pattern := tiling.Pattern{Geo: geo, Phases: 4}
	err = pattern.Run(
		func(phase int, t tiling.Tile) { // CPU producer
			for y := t.Y0; y < t.Y0+t.H; y++ {
				for x := t.X0; x < t.X0+t.W; x++ {
					data[y*geo.Width+x] += float32(phase + 1)
				}
			}
		},
		func(phase int, t tiling.Tile) { // GPU consumer stand-in
			for y := t.Y0; y < t.Y0+t.H; y++ {
				for x := t.X0; x < t.X0+t.W; x++ {
					data[y*geo.Width+x] *= 2
				}
			}
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	var sum float64
	for _, v := range data {
		sum += float64(v)
	}
	fmt.Printf("concurrent run complete, checksum %.0f (deterministic across runs)\n\n", sum)

	// Price the pattern analytically on the simulated device.
	for _, barrier := range []units.Latency{100, 1000, 10000} {
		over, serial, err := pattern.Estimate(tiling.Timing{
			CPUTile: 150, GPUTile: 120, Barrier: barrier,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("barrier %-8v overlapped %-12v serialized %-12v gain %.2fx\n",
			barrier.Duration(), over.Duration(), serial.Duration(),
			float64(serial)/float64(over))
	}
}
