// Example: tuning the Shack-Hartmann wavefront-sensor centroid extraction
// across the three Jetson platforms — the paper's §IV-B study. For each
// board the framework profiles the app, classifies its cache dependence and
// recommends a communication model; then all three models are measured to
// check the recommendation (paper Tables II and III).
//
// The functional algorithm also runs on a synthetic exposure to show the
// library computes real centroids, not just traffic.
package main

import (
	"flag"
	"fmt"
	"log"

	"igpucomm"
	"igpucomm/internal/apps/shwfs"
	"igpucomm/internal/imgutil"
	"igpucomm/internal/microbench"
)

func main() {
	quick := flag.Bool("quick", false, "reduced characterization scale")
	flag.Parse()

	// 1. The algorithm itself: extract real centroids from a synthetic
	// Shack-Hartmann exposure and report the accuracy.
	frame, truth, err := imgutil.SpotGrid(imgutil.SpotGridParams{
		SubapsX: 16, SubapsY: 16, SubapPx: 16,
		SpotSigma: 1.4, MaxShift: 3, PeakIntensity: 220,
		Background: 4, NoiseAmp: 2, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := shwfs.Config{SubapsX: 16, SubapsY: 16, SubapPx: 16, Threshold: 8}
	cents, err := shwfs.Extract(cfg, frame)
	if err != nil {
		log.Fatal(err)
	}
	rms, err := shwfs.RMSError(cfg, cents, truth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("functional check: %d centroids extracted, RMS error %.3f px\n\n", len(cents), rms)

	// 2. The tuning flow on each board.
	w, err := shwfs.Workload(shwfs.DefaultWorkloadParams())
	if err != nil {
		log.Fatal(err)
	}
	params := microbench.DefaultParams()
	if *quick {
		params = microbench.TestParams()
	}

	for _, board := range igpucomm.Platforms() {
		s, err := igpucomm.NewSoC(board)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s\n", board)
		char, err := igpucomm.Characterize(s, params)
		if err != nil {
			log.Fatal(err)
		}
		rec, err := igpucomm.Advise(char, s, w, "sc")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  profile: CPU usage %.1f%%, GPU usage %.1f%% (zone %v)\n",
			rec.CPUUsage*100, rec.GPUUsage*100, rec.Zone)
		fmt.Printf("  framework suggests %q (estimated %+.0f%%)\n", rec.Suggested, rec.SpeedupPercent())

		var scTotal float64
		for _, m := range []igpucomm.Model{igpucomm.StandardCopy, igpucomm.UnifiedMemory, igpucomm.ZeroCopy} {
			rep, err := igpucomm.Run(s, w, m)
			if err != nil {
				log.Fatal(err)
			}
			total := rep.Total.Seconds() * 1e6
			if m.Name() == "sc" {
				scTotal = total
			}
			fmt.Printf("  measured %-3s %9.1fµs (%+.0f%% vs SC), kernel %.1fµs/launch\n",
				m.Name(), total, (scTotal/total-1)*100, rep.KernelTimePer().Seconds()*1e6)
		}
		fmt.Println()
	}
}
