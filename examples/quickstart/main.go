// Quickstart: define a small CPU+GPU workload, run it under all three
// communication models on a simulated Jetson AGX Xavier, and ask the
// framework which model it should use.
package main

import (
	"fmt"
	"log"

	"igpucomm"
	"igpucomm/internal/cpu"
	"igpucomm/internal/gpu"
	"igpucomm/internal/isa"
)

func main() {
	// A toy producer/consumer: the CPU writes 64K floats, the GPU doubles
	// them into an output buffer.
	const n = 64 * 1024
	w := igpucomm.Workload{
		Name: "quickstart",
		In:   []igpucomm.BufferSpec{{Name: "in", Size: n * 4}},
		Out:  []igpucomm.BufferSpec{{Name: "out", Size: n * 4}},
		CPUTask: func(c *cpu.CPU, lay igpucomm.Layout) {
			base := lay.Addr("in")
			for i := int64(0); i < n; i += 16 {
				c.Store(base+i*4, 4)
				c.Work(isa.MulF32, 4)
			}
		},
		MakeKernel: func(lay igpucomm.Layout, _ int) gpu.Kernel {
			in, out := lay.Addr("in"), lay.Addr("out")
			return gpu.Kernel{
				Name:    "double",
				Threads: n,
				Program: func(tid int, p *isa.Program) {
					p.Ld(in+int64(tid)*4, 4)
					p.Compute(isa.FMA, 256)
					p.St(out+int64(tid)*4, 4)
				},
			}
		},
		Overlappable: true,
		Warmup:       1,
	}

	s, err := igpucomm.NewSoC(igpucomm.XavierName)
	if err != nil {
		log.Fatal(err)
	}

	// Measure the workload under each communication model.
	fmt.Println("measured per-iteration times on", s.Name())
	for _, m := range []igpucomm.Model{igpucomm.StandardCopy, igpucomm.UnifiedMemory, igpucomm.ZeroCopy} {
		rep, err := igpucomm.Run(s, w, m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-3s total %-12v (cpu %v, kernels %v, copies %v)\n",
			m.Name(), rep.Total.Duration(), rep.CPUTime.Duration(),
			rep.KernelTime.Duration(), rep.CopyTime.Duration())
	}

	// Ask the framework (the characterization takes a few seconds at the
	// evaluation scale).
	char, err := igpucomm.Characterize(s, igpucomm.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	rec, err := igpucomm.Advise(char, s, w, "sc")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nframework verdict: use %q (estimated %+.0f%%)\n", rec.Suggested, rec.SpeedupPercent())
	fmt.Println("rationale:", rec.Rationale)
}
