package igpucomm

import (
	"testing"

	"igpucomm/internal/cpu"
	"igpucomm/internal/gpu"
	"igpucomm/internal/isa"
	"igpucomm/internal/microbench"
)

func facadeWorkload() Workload {
	const n = 8192
	return Workload{
		Name: "facade",
		In:   []BufferSpec{{Name: "in", Size: n * 4}},
		Out:  []BufferSpec{{Name: "out", Size: n * 4}},
		CPUTask: func(c *cpu.CPU, lay Layout) {
			base := lay.Addr("in")
			for i := int64(0); i < n; i += 16 {
				c.Store(base+i*4, 4)
			}
		},
		MakeKernel: func(lay Layout, _ int) gpu.Kernel {
			in, out := lay.Addr("in"), lay.Addr("out")
			return gpu.Kernel{Name: "k", Threads: n, Program: func(tid int, p *isa.Program) {
				p.Ld(in+int64(tid)*4, 4)
				p.Compute(isa.FMA, 32)
				p.St(out+int64(tid)*4, 4)
			}}
		},
		Warmup: 1,
	}
}

func TestPlatformsAndNewSoC(t *testing.T) {
	names := Platforms()
	if len(names) != 3 {
		t.Fatalf("platforms = %v, want 3", names)
	}
	for _, name := range names {
		s, err := NewSoC(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("SoC name %q != %q", s.Name(), name)
		}
		cfg, err := PlatformConfig(name)
		if err != nil || cfg.Name != name {
			t.Errorf("PlatformConfig(%q) = %v, %v", name, cfg.Name, err)
		}
	}
	if _, err := NewSoC("rpi5"); err == nil {
		t.Error("unknown platform accepted")
	}
}

func TestFacadeRunAllModels(t *testing.T) {
	s, err := NewSoC(TX2Name)
	if err != nil {
		t.Fatal(err)
	}
	w := facadeWorkload()
	for _, m := range []Model{StandardCopy, UnifiedMemory, ZeroCopy} {
		rep, err := Run(s, w, m)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if rep.Total <= 0 || rep.Model != m.Name() {
			t.Errorf("%s: bad report %+v", m.Name(), rep)
		}
	}
}

func TestFacadeAdviceFlow(t *testing.T) {
	s, err := NewSoC(XavierName)
	if err != nil {
		t.Fatal(err)
	}
	char, err := Characterize(s, microbench.TestParams())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Advise(char, s, facadeWorkload(), "sc")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Suggested == "" || rec.Rationale == "" {
		t.Errorf("incomplete recommendation: %+v", rec)
	}
	prof, err := CollectProfile(s, facadeWorkload(), StandardCopy)
	if err != nil {
		t.Fatal(err)
	}
	if prof.KernelTime <= 0 {
		t.Error("profile missing kernel time")
	}
	if _, err := ModelByName("zc"); err != nil {
		t.Error(err)
	}
	if _, err := ModelByName("nvlink"); err == nil {
		t.Error("unknown model accepted")
	}
}

// TestGoldenDecisions is the end-to-end integration check: for every (board,
// case-study) pair the framework must make the same call the paper's
// evaluation reaches, and the measured model ordering must agree with it.
func TestGoldenDecisions(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale integration")
	}
	type golden struct {
		board      string
		app        string // "shwfs" or "orbslam"
		current    string
		wantModel  string
		zcWinsOver bool // whether measured ZC should beat measured SC
	}
	cases := []golden{
		{NanoName, "shwfs", "sc", "sc", false},
		{TX2Name, "shwfs", "sc", "sc", false},
		{XavierName, "shwfs", "sc", "zc", true},
		{TX2Name, "orbslam", "zc", "sc", false},
		{XavierName, "orbslam", "sc", "zc", true},
	}
	chars := map[string]Characterization{}
	for _, tc := range cases {
		s, err := NewSoC(tc.board)
		if err != nil {
			t.Fatal(err)
		}
		char, ok := chars[tc.board]
		if !ok {
			char, err = Characterize(s, DefaultParams())
			if err != nil {
				t.Fatal(err)
			}
			chars[tc.board] = char
		}
		w, err := caseStudy(tc.app)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := Advise(char, s, w, tc.current)
		if err != nil {
			t.Fatalf("%s/%s: %v", tc.board, tc.app, err)
		}
		if rec.Suggested != tc.wantModel {
			t.Errorf("%s/%s from %s: suggested %q, want %q (%s)",
				tc.board, tc.app, tc.current, rec.Suggested, tc.wantModel, rec.Rationale)
		}
		// Cross-check the advice against measurement.
		scRep, err := Run(s, w, StandardCopy)
		if err != nil {
			t.Fatal(err)
		}
		zcRep, err := Run(s, w, ZeroCopy)
		if err != nil {
			t.Fatal(err)
		}
		zcWins := zcRep.Total < scRep.Total
		if zcWins != tc.zcWinsOver {
			t.Errorf("%s/%s: measured ZC-wins=%v, expected %v (sc %v vs zc %v)",
				tc.board, tc.app, zcWins, tc.zcWinsOver, scRep.Total, zcRep.Total)
		}
	}
}

// TestFullMatrix runs every case study on every platform under every model —
// the everything-still-runs integration sweep.
func TestFullMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale integration")
	}
	apps := []string{"shwfs", "orbslam", "lanedet"}
	models := []string{"sc", "sc-async", "um", "zc", "hybrid"}
	for _, board := range Platforms() {
		s, err := NewSoC(board)
		if err != nil {
			t.Fatal(err)
		}
		for _, app := range apps {
			w, err := CaseStudy(app)
			if err != nil {
				t.Fatal(err)
			}
			for _, model := range models {
				m, err := ModelByName(model)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := Run(s, w, m)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", board, app, model, err)
				}
				if rep.Total <= 0 || rep.KernelTime <= 0 {
					t.Errorf("%s/%s/%s: degenerate report %v", board, app, model, rep.Total)
				}
				if rep.Model != model || rep.Platform != board {
					t.Errorf("%s/%s/%s: identity fields wrong", board, app, model)
				}
			}
		}
	}
}
