package igpucomm

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§IV). Each iteration regenerates the corresponding artifact on
// the simulated platforms, so `go test -bench=. -benchmem` reproduces the
// entire evaluation and reports how long each experiment takes to simulate.
//
// Ablation benchmarks at the bottom isolate the design choices DESIGN.md
// calls out (I/O coherence, overlap, tiling, copy-engine speed).

import (
	"context"
	"sync"
	"testing"

	"igpucomm/internal/comm"
	"igpucomm/internal/cpu"
	"igpucomm/internal/devices"
	"igpucomm/internal/experiments"
	"igpucomm/internal/gpu"
	"igpucomm/internal/isa"
	"igpucomm/internal/microbench"
	"igpucomm/internal/soc"
	"igpucomm/internal/tiling"
	"igpucomm/internal/units"
)

var (
	benchOnce sync.Once
	benchCtx  *experiments.Context
)

// benchContext characterizes the three devices once; the per-table
// benchmarks then measure artifact regeneration on warm characterizations.
func benchContext(b *testing.B) *experiments.Context {
	b.Helper()
	benchOnce.Do(func() {
		benchCtx = experiments.NewContext(microbench.DefaultParams())
		if err := benchCtx.Prewarm(context.Background(), devices.NanoName, devices.TX2Name, devices.XavierName); err != nil {
			panic(err)
		}
	})
	return benchCtx
}

func BenchmarkTable1(b *testing.B) {
	c := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Table1(context.Background(), c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	c := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig5(context.Background(), c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	c := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig3(context.Background(), c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	c := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig6(context.Background(), c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	c := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig7(context.Background(), c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	c := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Table2(context.Background(), c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	c := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Table3(context.Background(), c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	c := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Table4(context.Background(), c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	c := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Table5(context.Background(), c); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationIOCoherence compares the MB1 ZC kernel on Xavier as-is
// versus with I/O coherence stripped (pinned traffic diverted to an uncached
// port — the mechanism the paper credits for Xavier's usable zero-copy).
func BenchmarkAblationIOCoherence(b *testing.B) {
	run := func(b *testing.B, coherent bool) {
		cfg, err := devices.ByName(devices.XavierName)
		if err != nil {
			b.Fatal(err)
		}
		if !coherent {
			cfg.Name = cfg.Name + "-nocoherence"
			cfg.IOCoherent = false
			cfg.PinnedBandwidth = 1.5 * units.GBps // TX2-class uncached path
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := soc.New(cfg)
			res, err := microbench.RunMB1(context.Background(), s, microbench.TestParams())
			if err != nil {
				b.Fatal(err)
			}
			row, _ := res.Row("zc")
			b.ReportMetric(row.Throughput.GB(), "zc-GB/s")
		}
	}
	b.Run("coherent", func(b *testing.B) { run(b, true) })
	b.Run("uncoherent", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationOverlap measures the third micro-benchmark's ZC total
// with and without the §III-C task overlap.
func BenchmarkAblationOverlap(b *testing.B) {
	run := func(b *testing.B, overlap bool) {
		s, err := devices.NewSoC(devices.XavierName)
		if err != nil {
			b.Fatal(err)
		}
		w := microbench.MB3WorkloadForAblation(microbench.TestParams())
		w.Overlappable = overlap
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := comm.ZC{}.Run(s, w)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(rep.Total.Seconds()*1e6, "zc-total-µs")
		}
	}
	b.Run("overlapped", func(b *testing.B) { run(b, true) })
	b.Run("serialized", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationTiling prices the §III-C pattern against a phase-
// serialized schedule using the analytic twin.
func BenchmarkAblationTiling(b *testing.B) {
	g, err := tiling.NewGeometry(512, 128, 4, 64, 64)
	if err != nil {
		b.Fatal(err)
	}
	p := tiling.Pattern{Geo: g, Phases: 8}
	for i := 0; i < b.N; i++ {
		over, serial, err := p.Estimate(tiling.Timing{CPUTile: 120, GPUTile: 100, Barrier: 500})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(serial)/float64(over), "overlap-gain-x")
	}
}

// BenchmarkAblationCopyBandwidth sweeps the copy engine to move the SC<->ZC
// crossover: with a slow engine the SH-WFS app flips to preferring ZC even
// on TX2-class hardware.
func BenchmarkAblationCopyBandwidth(b *testing.B) {
	for _, bw := range []units.BytesPerSecond{2 * units.GBps, 15 * units.GBps, 60 * units.GBps} {
		bw := bw
		b.Run(units.BytesPerSecond(bw).String(), func(b *testing.B) {
			cfg, err := devices.ByName(devices.TX2Name)
			if err != nil {
				b.Fatal(err)
			}
			cfg.Name = cfg.Name + "-copybw"
			cfg.CopyBandwidth = bw
			w, err := experiments.SHWFSWorkloadForAblation()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := soc.New(cfg)
				rep, err := comm.SC{}.Run(s, w)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rep.CopyTime.Seconds()*1e6, "copy-µs")
			}
		})
	}
}

// BenchmarkExtensionAsync regenerates the sc-async extension comparison.
func BenchmarkExtensionAsync(b *testing.B) {
	c := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.TableAsync(context.Background(), c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableEnergy regenerates the energy accounting artifact.
func BenchmarkTableEnergy(b *testing.B) {
	c := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.TableEnergy(context.Background(), c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableRealtime regenerates the streaming real-time analysis.
func BenchmarkTableRealtime(b *testing.B) {
	c := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.TableRealtime(context.Background(), c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationUMPageSize sweeps the UM driver's migration granularity
// and fault cost — the knobs behind the paper's ±8% UM-vs-SC band.
func BenchmarkAblationUMPageSize(b *testing.B) {
	for _, page := range []int64{4 << 10, 64 << 10, 512 << 10} {
		page := page
		b.Run(units.FormatBytes(page), func(b *testing.B) {
			cfg, err := devices.ByName(devices.TX2Name)
			if err != nil {
				b.Fatal(err)
			}
			cfg.Name = cfg.Name + "-umpage"
			cfg.PageSize = page
			w, err := experiments.SHWFSWorkloadForAblation()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := soc.New(cfg)
				rep, err := comm.UM{}.Run(s, w)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rep.CopyTime.Seconds()*1e6, "migration-µs")
			}
		})
	}
}

// BenchmarkAblationPhaseAccuracy compares the §III-C pattern's phase-accurate
// SoC simulation against the whole-iteration overlap approximation comm.ZC
// uses, on the same tiled producer/consumer work.
func BenchmarkAblationPhaseAccuracy(b *testing.B) {
	s, err := devices.NewSoC(devices.XavierName)
	if err != nil {
		b.Fatal(err)
	}
	buf, err := s.AllocPinned("phase-tiles", 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	geo, err := tiling.NewGeometry(2048, 128, 4, 64, 64)
	if err != nil {
		b.Fatal(err)
	}
	pattern := tiling.Pattern{Geo: geo, Phases: 4}
	work := tiling.SoCWork{
		Barrier: 1000,
		CPUTile: func(c *cpu.CPU, t tiling.Tile) {
			c.Load(buf.Addr+int64(t.Y0*geo.Width+t.X0)*4, 4)
			c.Work(isa.FMA, 6)
		},
		GPUKernel: func(phase int, tiles []tiling.Tile) gpu.Kernel {
			return gpu.Kernel{Name: "phase", Threads: len(tiles), Program: func(tid int, p *isa.Program) {
				t := tiles[tid]
				p.Ld(buf.Addr+int64(t.Y0*geo.Width+t.X0)*4, 4)
				p.Compute(isa.FMA, 4)
			}}
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total, _, err := pattern.SimulateOnSoC(s, work)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(total.Seconds()*1e6, "phase-accurate-µs")
	}
}
