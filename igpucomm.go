// Package igpucomm is a framework for optimizing CPU-iGPU communication on
// embedded unified-memory platforms — a full reproduction, on a simulated
// heterogeneous SoC substrate, of Lumpp, Patel & Bombieri, "A Framework for
// Optimizing CPU-iGPU Communication on Embedded Platforms" (DAC 2021).
//
// Given an application (a Workload: CPU task + GPU kernels + shared buffers)
// and a target platform (Jetson Nano, TX2 or AGX Xavier catalog entries, or
// a custom soc.Config), the framework
//
//  1. characterizes the device with three micro-benchmarks (peak GPU cache
//     throughput per communication model, the cache-usage thresholds where
//     zero-copy stops being viable, and the maximum overlap gain),
//  2. profiles the application's CPU and GPU cache usage, and
//  3. recommends the communication model — standard copy (SC), unified
//     memory (UM), or pinned zero-copy (ZC) — with an estimated speedup.
//
// Quick start:
//
//	s, _ := igpucomm.NewSoC(igpucomm.XavierName)
//	char, _ := igpucomm.Characterize(s, igpucomm.DefaultParams())
//	rec, _ := igpucomm.Advise(char, s, myWorkload, "sc")
//	fmt.Println(rec.Suggested, rec.SpeedupPercent())
//
// This package is a facade; the implementation lives in internal/ (substrate
// simulators, communication models, micro-benchmarks, the decision flow, the
// §III-C tiling pattern, and the paper's two case-study applications).
package igpucomm

import (
	"context"
	"fmt"

	"igpucomm/internal/apps/lanedet"
	"igpucomm/internal/apps/orbslam"
	"igpucomm/internal/apps/shwfs"
	"igpucomm/internal/comm"
	"igpucomm/internal/devices"
	"igpucomm/internal/framework"
	"igpucomm/internal/hazard"
	"igpucomm/internal/microbench"
	"igpucomm/internal/profile"
	"igpucomm/internal/soc"
)

// Platform names of the built-in device catalog.
const (
	NanoName   = devices.NanoName
	TX2Name    = devices.TX2Name
	XavierName = devices.XavierName
)

// Re-exported core types.
type (
	// SoC is a simulated platform instance.
	SoC = soc.SoC
	// SoCConfig describes a platform (use the catalog or build your own).
	SoCConfig = soc.Config
	// Workload is one iteration of a CPU+GPU application.
	Workload = comm.Workload
	// BufferSpec names one shared buffer.
	BufferSpec = comm.BufferSpec
	// Layout maps buffer names to placements at run time.
	Layout = comm.Layout
	// Report is a measured run under one communication model.
	Report = comm.Report
	// Model is a communication model (SC, UM or ZC).
	Model = comm.Model
	// Params tunes the micro-benchmark scale.
	Params = microbench.Params
	// Characterization is a device's micro-benchmark summary.
	Characterization = framework.Characterization
	// Recommendation is the framework's verdict for an application.
	Recommendation = framework.Recommendation
	// Profile is a profiled run's counter summary.
	Profile = profile.Profile
)

// Communication models.
var (
	// StandardCopy is the explicit-copy model (Fig 1.c).
	StandardCopy Model = comm.SC{}
	// UnifiedMemory is the page-migration model (Fig 1.d).
	UnifiedMemory Model = comm.UM{}
	// ZeroCopy is the pinned shared-access model (Fig 1.a/b).
	ZeroCopy Model = comm.ZC{}
)

// Platforms lists the built-in catalog names.
func Platforms() []string {
	return []string{NanoName, TX2Name, XavierName}
}

// NewSoC instantiates a catalog platform by name.
func NewSoC(name string) (*SoC, error) { return devices.NewSoC(name) }

// PlatformConfig returns a catalog entry for inspection or modification.
func PlatformConfig(name string) (SoCConfig, error) { return devices.ByName(name) }

// DefaultParams is the standard micro-benchmark scale.
func DefaultParams() Params { return microbench.DefaultParams() }

// Characterize runs the paper's three micro-benchmarks on a platform.
func Characterize(s *SoC, p Params) (Characterization, error) {
	return framework.Characterize(context.Background(), s, p)
}

// Advise profiles the workload and runs the paper's Fig-2 decision flow:
// which communication model should this application use on this device, and
// what speedup would the switch buy?
func Advise(char Characterization, s *SoC, w Workload, currentModel string) (Recommendation, error) {
	return framework.AdviseWorkload(context.Background(), char, s, w, currentModel)
}

// Run executes the workload under a model and reports timings and traffic.
func Run(s *SoC, w Workload, m Model) (Report, error) { return m.Run(s, w) }

// HazardReport is a verification result (see Verify and CheckedRun).
type HazardReport = hazard.Report

// Verify statically checks a platform × workload × model combination —
// layout disjointness, §III-C schedule tile ownership and barrier ordering —
// without executing it. See also cmd/hazardcheck.
func Verify(s *SoC, w Workload, m Model) (HazardReport, error) {
	return comm.Verify(s, w, m)
}

// CheckedRun verifies the combination first, refuses to execute a refuted
// schedule, and attaches the verification report to the run's Report.
func CheckedRun(s *SoC, w Workload, m Model) (Report, error) {
	return comm.CheckedRun(context.Background(), s, w, m)
}

// Checked wraps a model so it verifies before every run:
//
//	rep, err := igpucomm.Run(s, w, igpucomm.Checked(igpucomm.ZeroCopy))
func Checked(m Model) Model { return comm.Checked{Inner: m} }

// CollectProfile profiles the workload under a model (nvprof-style counters).
func CollectProfile(s *SoC, w Workload, m Model) (Profile, error) {
	return profile.Collect(context.Background(), s, w, m)
}

// ModelByName resolves "sc", "um" or "zc".
func ModelByName(name string) (Model, error) { return comm.ByName(name) }

// caseStudy builds one of the case-study applications by name ("shwfs",
// "orbslam", or the ADAS extension "lanedet") at evaluation scale.
func caseStudy(name string) (Workload, error) {
	switch name {
	case "shwfs":
		return shwfs.Workload(shwfs.DefaultWorkloadParams())
	case "orbslam":
		return orbslam.Workload(orbslam.DefaultWorkloadParams())
	case "lanedet":
		return lanedet.Workload(lanedet.DefaultWorkloadParams())
	default:
		return Workload{}, fmt.Errorf("igpucomm: unknown case study %q", name)
	}
}

// CaseStudy builds one of the paper's evaluation applications by name.
func CaseStudy(name string) (Workload, error) { return caseStudy(name) }

// Exploration is a measured ranking of models (see Explore).
type Exploration = framework.Exploration

// Explore measures the workload under every paper model and returns the
// ranking — the brute-force companion to Advise.
func Explore(s *SoC, w Workload) (Exploration, error) {
	return framework.Explore(s, w, nil)
}
